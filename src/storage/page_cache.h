#ifndef BOXES_STORAGE_PAGE_CACHE_H_
#define BOXES_STORAGE_PAGE_CACHE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "storage/io_stats.h"
#include "storage/page_store.h"
#include "util/status.h"

namespace boxes {

/// Configuration for PageCache.
struct PageCacheOptions {
  /// If false (the paper's main experimental setting), the working set is
  /// dropped at the end of every operation: a small number of memory blocks
  /// is available *within* one operation for pages that are immediately
  /// revisited, and nothing survives across operations.
  ///
  /// If true, up to `capacity_pages` frames persist across operations with
  /// LRU replacement (the paper's "with caching" remark: the root tends to
  /// stay resident).
  bool retain_across_ops = false;
  uint64_t capacity_pages = 1024;

  /// Number of page-table shards (rounded up to a power of two). Each shard
  /// has its own mutex and hash map, so concurrent readers on different
  /// pages rarely contend. 1 degenerates to a single-lock cache.
  size_t shards = 16;
};

/// The single point through which all structures access pages, responsible
/// for the paper's I/O accounting.
///
/// Usage: the *caller* (workload runner, example program) brackets each
/// logical operation with BeginOp()/EndOp(); structures simply call
/// GetPage/GetPageForWrite/AllocatePage/FreePage. Within an operation, the
/// first touch of a page costs one read I/O and later touches are free; at
/// EndOp every distinct dirty page costs one write I/O and (without
/// retention) the working set is dropped.
///
/// If no operation is ever begun, the cache behaves as one unbounded
/// operation: all pages stay resident and dirty data is flushed by
/// FlushAll(). This is convenient for tests that only care about
/// correctness.
///
/// Concurrency (DESIGN.md §4g): the page table is sharded under per-shard
/// mutexes, I/O counters are atomic, and the active phase is per-thread, so
/// any number of reader threads may call GetPage concurrently. Structural
/// transitions — BeginOp/EndOp, FlushAll, AllocatePage/FreePage, eviction —
/// assume the caller holds the single-writer side of an EpochGuard (or is
/// otherwise exclusive): they may drop frames whose raw pointers concurrent
/// readers would still dereference. Frame bytes themselves are unsynchron-
/// ized; writer/reader byte-level exclusion is the EpochGuard's job.
class PageCache {
 public:
  explicit PageCache(PageStore* store, PageCacheOptions options = {});
  ~PageCache();

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  size_t page_size() const { return store_->page_size(); }
  PageStore* store() const { return store_; }

  /// Marks the start of a logical operation. Requires no operation active.
  /// Writer-exclusive (see class comment).
  void BeginOp();

  /// Flushes dirty frames (counting write I/Os), drops the working set
  /// (unless retention is enabled), and ends the operation.
  Status EndOp();

  bool op_active() const {
    return op_active_.load(std::memory_order_acquire);
  }

  /// Returns a pointer to the page's bytes, valid until EndOp()/FlushAll()
  /// (or until FreePage of the same page). Counts one read I/O if the page
  /// is not in the working set / retained cache. Safe to call from many
  /// reader threads concurrently.
  StatusOr<uint8_t*> GetPage(PageId id);

  /// Like GetPage but also marks the page dirty. Writer-exclusive.
  StatusOr<uint8_t*> GetPageForWrite(PageId id);

  /// Allocates a zeroed page, resident and dirty. No read I/O is charged;
  /// the write is charged when flushed. On success `*data` points at the
  /// frame bytes. Writer-exclusive.
  StatusOr<PageId> AllocatePage(uint8_t** data);

  /// Frees a page; drops its frame without writing it back.
  /// Writer-exclusive.
  Status FreePage(PageId id);

  /// Flushes all dirty frames and, without retention, drops all frames.
  /// Same as EndOp but legal with no active operation. Writer-exclusive.
  Status FlushAll();

  /// Snapshot of the cumulative I/O counters.
  IoStats stats() const;

  /// Per-phase I/O attribution (see IoPhase). Reads are charged to the
  /// phase active at the cache miss; writes to the phase that first dirtied
  /// the flushed page. Sums across phases equal stats().
  PhaseIoTable phase_stats() const;
  IoStats phase_stats(IoPhase phase) const;

  /// The phase this thread's new I/Os are currently charged to. Phases are
  /// per-thread state (a reader's search must not tag another thread's
  /// I/Os), maintained in TLS. Use ScopedPhase rather than SetPhase.
  IoPhase current_phase() const;

  /// Sets the calling thread's active phase, returning the previous one.
  IoPhase SetPhase(IoPhase phase);

  /// Resets counters (total and per-phase) to zero (frames are untouched).
  /// Not meaningful while other threads are counting.
  void ResetStats();

  /// Number of frames currently resident (for tests).
  size_t resident_pages() const {
    return total_frames_.load(std::memory_order_acquire);
  }

  /// Times a thread failed to acquire a shard mutex on first try and had to
  /// block (the "cache.shard_contention" counter family).
  uint64_t shard_contention() const {
    return shard_contention_.load(std::memory_order_relaxed);
  }

  /// Repeat-touch LRU promotions skipped by sampling (see Touch): each skip
  /// is a global lru_mu_ acquisition a cache hit avoided.
  uint64_t lru_sampled_skips() const {
    return lru_sampled_skips_.load(std::memory_order_relaxed);
  }

  /// Per-thread sampling period for repeat-touch LRU promotions in retained
  /// mode (power of two): one in this many repeat touches moves the frame
  /// to the LRU front; the rest leave recency slightly stale instead of
  /// serializing every hit on the global LRU mutex.
  static constexpr uint64_t kLruTouchSamplePeriod = 16;

  /// Number of page-table shards (power of two).
  size_t num_shards() const { return num_shards_; }

  /// The first error swallowed by an IoScope unwinding (sticky until
  /// cleared); OK if none occurred. Tests use this to observe flush
  /// failures that happen during stack unwinding.
  Status last_unwind_error() const;
  void ClearUnwindError();

  /// Records an error that could not be propagated (destructor context).
  /// Only the first error sticks.
  void RecordUnwindError(const Status& status);

 private:
  struct Frame {
    std::unique_ptr<uint8_t[]> data;
    bool dirty = false;
    bool touched_this_op = false;
    // Phase that first dirtied this frame (write-I/O attribution).
    IoPhase dirty_phase = IoPhase::kOther;
    // Position in lru_ (retained mode only).
    std::list<PageId>::iterator lru_pos;
    bool in_lru = false;
  };

  /// One page-table shard. Lock order: a shard mutex may be held while
  /// acquiring lru_mu_, never the reverse (eviction snapshots the LRU order
  /// first, then visits shards with no LRU lock held).
  struct Shard {
    std::mutex mu;
    std::unordered_map<PageId, Frame> frames;
  };

  struct AtomicIo {
    std::atomic<uint64_t> reads{0};
    std::atomic<uint64_t> writes{0};
  };

  Shard& ShardFor(PageId id) const;
  /// Locks a shard, counting contention when the fast path fails.
  std::unique_lock<std::mutex> LockShard(Shard* shard);

  StatusOr<uint8_t*> GetInternal(PageId id, bool for_write);
  /// Evicts retained frames until at most `capacity_pages - headroom`
  /// remain (headroom = 1 makes room for an imminent insertion; 0 trims to
  /// exactly capacity). Writer-exclusive.
  Status EvictIfNeeded(size_t headroom);
  /// Flushes one frame; the caller holds the frame's shard mutex.
  Status FlushFrameLocked(PageId id, Frame* frame);
  /// Marks a frame recently used; the caller holds its shard mutex.
  void Touch(PageId id, Frame* frame);
  void MarkDirty(Frame* frame);

  PageStore* store_;  // not owned
  const PageCacheOptions options_;
  size_t num_shards_ = 1;  // power of two
  std::unique_ptr<Shard[]> shards_;
  std::atomic<size_t> total_frames_{0};

  std::mutex lru_mu_;
  std::list<PageId> lru_;  // front = most recent (retained mode only)

  AtomicIo stats_;
  std::array<AtomicIo, kNumIoPhases> phase_stats_;
  std::atomic<uint64_t> shard_contention_{0};
  std::atomic<uint64_t> lru_sampled_skips_{0};

  mutable std::mutex unwind_mu_;
  Status last_unwind_error_;

  std::atomic<bool> op_active_{false};
};

/// RAII phase guard: I/Os charged by this thread while the guard lives are
/// attributed to `phase`. Guards nest; the innermost one wins, and the
/// previous phase is restored on destruction. Phase state is thread-local,
/// so guards on different threads do not interfere.
class ScopedPhase {
 public:
  ScopedPhase(PageCache* cache, IoPhase phase)
      : cache_(cache), previous_(cache->SetPhase(phase)) {}
  ~ScopedPhase() { cache_->SetPhase(previous_); }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PageCache* cache_;
  const IoPhase previous_;
};

/// RAII bracket for one logical operation on a PageCache.
class IoScope {
 public:
  explicit IoScope(PageCache* cache) : cache_(cache) { cache_->BeginOp(); }
  ~IoScope() {
    if (cache_->op_active()) {
      // A destructor must not abort the process (the flush may fail while
      // unwinding an already-failing operation): the error is logged and
      // kept queryable via PageCache::last_unwind_error(). Callers that
      // need error propagation use End().
      const Status status = cache_->EndOp();
      if (!status.ok()) {
        cache_->RecordUnwindError(status);
      }
    }
  }

  IoScope(const IoScope&) = delete;
  IoScope& operator=(const IoScope&) = delete;

  /// Ends the operation early, propagating flush errors.
  Status End() { return cache_->EndOp(); }

 private:
  PageCache* cache_;
};

}  // namespace boxes

#endif  // BOXES_STORAGE_PAGE_CACHE_H_
