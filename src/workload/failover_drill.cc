#include "workload/failover_drill.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/common/update_buffer.h"
#include "core/wbox/wbox.h"
#include "replication/digest.h"
#include "replication/standby_applier.h"
#include "replication/transport.h"
#include "replication/wal_shipper.h"
#include "storage/metadata_io.h"
#include "storage/page_cache.h"
#include "storage/page_store.h"
#include "storage/retrying_store.h"
#include "storage/wal.h"

namespace boxes::workload {

namespace {

using replication::FaultyLink;
using replication::LinkFaultOptions;
using replication::ReplicationDigest;
using replication::StandbyApplier;
using replication::StandbyApplierOptions;
using replication::WalShipper;

constexpr int kMaxFlushAttempts = 64;
constexpr int kMaxCatchUpRounds = 256;
/// Manual checkpoint cadence. The primary's pipeline runs with automatic
/// checkpoints DISABLED and the drill checkpoints only after the standby
/// acknowledged the full log — truncation recycles log pages, and a page
/// recycled before every standby applied it would turn an ordinary link
/// drop into a forced re-bootstrap. This is the replication-slot rule:
/// the log may not truncate past the slowest replica.
constexpr uint64_t kCheckpointEveryFlushes = 6;

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One side's full write stack. unique_ptrs because the cold path must
/// destroy the dead session (in reverse dependency order) and rebuild it
/// over the healed device.
struct PrimaryStack {
  std::unique_ptr<FilePageStore> base;
  std::unique_ptr<FaultInjectionPageStore> fault;
  std::unique_ptr<RetryingPageStore> retry;
  std::unique_ptr<PageCache> cache;
  std::unique_ptr<WBox> scheme;
  std::unique_ptr<WalPipeline> pipeline;
  std::unique_ptr<UpdateBuffer> buffer;

  void Destroy() {
    buffer.reset();
    pipeline.reset();
    scheme.reset();
    cache.reset();
    retry.reset();
    fault.reset();
    base.reset();
  }
};

/// An acknowledged flush: retries through transient storm faults. Each
/// retry re-drives the same pending batch — UpdateBuffer keeps the set
/// intact on a failed flush, so this is exactly a client's retry loop.
Status AckedFlush(UpdateBuffer* buffer, uint64_t* flush_retries) {
  Status last = Status::OK();
  for (int attempt = 0; attempt < kMaxFlushAttempts; ++attempt) {
    last = buffer->Flush();
    if (last.ok()) {
      return last;
    }
    ++*flush_retries;
  }
  return Status::Internal("acknowledged flush did not get through the storm: " +
                          last.message());
}

/// Semi-sync barrier: pumps the standby until it applied every assigned
/// batch, asking the primary to re-ship whenever the link drained with the
/// standby still behind (a drop or tear swallowed a frame).
Status SyncStandby(WalShipper* shipper, StandbyApplier* applier,
                   FaultyLink* link, uint64_t target_next_batch) {
  for (int round = 0; round < kMaxCatchUpRounds; ++round) {
    BOXES_RETURN_IF_ERROR(applier->Pump());
    if (applier->next_expected() >= target_next_batch) {
      return Status::OK();
    }
    if (link->drained()) {
      BOXES_RETURN_IF_ERROR(shipper->ReShipFrom(applier->next_expected()));
    }
  }
  return Status::Internal(
      "standby failed to catch up to batch " +
      std::to_string(target_next_batch) + " (stuck at " +
      std::to_string(applier->next_expected()) + ")");
}

/// Audits the survivor against the acked write history: every
/// acknowledged op's LIDs must still resolve, and the structure must pass
/// its own invariants.
Status AuditSurvivor(LabelingScheme* scheme,
                     const std::vector<NewElement>& acked,
                     FailoverDrillResult* result) {
  BOXES_RETURN_IF_ERROR(scheme->CheckInvariants());
  for (const NewElement& element : acked) {
    if (!scheme->Lookup(element.start).ok() ||
        !scheme->Lookup(element.end).ok()) {
      ++result->lost_acked_ops;
    }
  }
  BOXES_ASSIGN_OR_RETURN(const SchemeStats stats, scheme->GetStats());
  result->survivor_live_labels = stats.live_labels;
  return Status::OK();
}

Status OpenFreshPrimary(const FailoverDrillOptions& options,
                        PrimaryStack* primary) {
  std::remove(options.db_path.c_str());
  std::remove((options.db_path + ".journal").c_str());
  primary->base =
      std::make_unique<FilePageStore>(options.db_path, options.page_size);
  BOXES_RETURN_IF_ERROR(primary->base->status());
  primary->fault = std::make_unique<FaultInjectionPageStore>(primary->base.get());
  primary->fault->SetSeed(options.seed);
  primary->retry = std::make_unique<RetryingPageStore>(primary->fault.get());
  primary->cache = std::make_unique<PageCache>(primary->retry.get());
  primary->scheme = std::make_unique<WBox>(primary->cache.get());
  // checkpoint_interval = 0: truncation is gated on standby acknowledgment
  // (see kCheckpointEveryFlushes above), never automatic.
  primary->pipeline = std::make_unique<WalPipeline>(
      primary->cache.get(), primary->scheme.get(),
      WalPipelineOptions{.checkpoint_interval = 0});
  primary->buffer = std::make_unique<UpdateBuffer>(
      primary->scheme.get(),
      UpdateBufferOptions{.flush_threshold = 1024, .auto_flush = false});
  BOXES_RETURN_IF_ERROR(InitializeSuperblock(primary->cache.get()));
  BOXES_RETURN_IF_ERROR(primary->pipeline->Init());
  primary->pipeline->Attach(primary->buffer.get());
  return Status::OK();
}

}  // namespace

StatusOr<FailoverDrillResult> RunFailoverDrill(
    const FailoverDrillOptions& options) {
  if (options.pre_kill_flushes < 2 || options.ops_per_flush == 0) {
    return Status::InvalidArgument(
        "drill needs at least two pre-kill flushes and a nonzero batch size");
  }
  FailoverDrillResult result;
  result.warm = options.warm_standby;

  PrimaryStack primary;
  BOXES_RETURN_IF_ERROR(OpenFreshPrimary(options, &primary));

  // Warm mode: a memory-backed hot standby fed over a deliberately lossy
  // link, so the drill's steady state continuously exercises drop/tear
  // catch-up and reorder buffering — not just the final promotion.
  LinkFaultOptions link_faults;
  link_faults.drop_probability = 0.05;
  link_faults.duplicate_probability = 0.05;
  link_faults.reorder_probability = 0.10;
  link_faults.tear_probability = 0.02;
  link_faults.seed = options.seed + 1;
  FaultyLink link(link_faults);
  MemoryPageStore standby_store(options.page_size);
  PageCache standby_cache(&standby_store);
  WBox standby_scheme(&standby_cache);
  StandbyApplier applier(&standby_cache, &standby_scheme, &link,
                         options.metrics,
                         StandbyApplierOptions{.checkpoint_interval = 4});
  WalShipper shipper(primary.pipeline.get(), primary.cache.get(), &link,
                     options.metrics);
  if (options.warm_standby) {
    BOXES_RETURN_IF_ERROR(InitializeSuperblock(&standby_cache));
    BOXES_RETURN_IF_ERROR(applier.Init());
    shipper.Attach();
  }

  // ---- Acked write stream until the device dies. --------------------------
  std::vector<NewElement> acked;
  BOXES_ASSIGN_OR_RETURN(const UpdateBuffer::Ticket root_ticket,
                         primary.buffer->InsertFirstElement());
  BOXES_RETURN_IF_ERROR(AckedFlush(primary.buffer.get(),
                                   &result.flush_retries));
  BOXES_ASSIGN_OR_RETURN(const NewElement root,
                         primary.buffer->Result(root_ticket));
  acked.push_back(root);
  ++result.acked_ops;

  auto run_acked_flush = [&](UpdateBuffer* buffer) -> Status {
    std::vector<UpdateBuffer::Ticket> tickets;
    for (uint64_t i = 0; i < options.ops_per_flush; ++i) {
      BOXES_ASSIGN_OR_RETURN(const UpdateBuffer::Ticket ticket,
                             buffer->InsertElementBefore(root.end));
      tickets.push_back(ticket);
    }
    BOXES_RETURN_IF_ERROR(AckedFlush(buffer, &result.flush_retries));
    for (const UpdateBuffer::Ticket ticket : tickets) {
      BOXES_ASSIGN_OR_RETURN(const NewElement element,
                             buffer->Result(ticket));
      acked.push_back(element);
      ++result.acked_ops;
    }
    return Status::OK();
  };

  for (uint64_t f = 1; f < options.pre_kill_flushes; ++f) {
    if (f == options.storm_start_flush) {
      primary.fault->SetFailProbability(options.storm_probability,
                                        /*transient=*/true);
    }
    BOXES_RETURN_IF_ERROR(run_acked_flush(primary.buffer.get()));
    if (options.warm_standby) {
      BOXES_RETURN_IF_ERROR(
          SyncStandby(&shipper, &applier, &link,
                      primary.pipeline->writer().next_batch_id()));
    }
    if (f % kCheckpointEveryFlushes == 0) {
      // Standby has acked through the horizon; truncation is now safe.
      BOXES_RETURN_IF_ERROR(primary.pipeline->CheckpointNow());
    }
  }

  // Quiesced divergence check right before the kill: the whole point of
  // shipping the log is that the standby IS the primary, label for label.
  if (options.warm_standby) {
    BOXES_ASSIGN_OR_RETURN(
        const ReplicationDigest primary_digest,
        replication::ComputeReplicationDigest(primary.scheme.get()));
    BOXES_RETURN_IF_ERROR(applier.CheckDivergence(primary_digest));
  }

  // ---- Kill the device mid-workload. --------------------------------------
  primary.fault->SetFailProbability(1.0, /*transient=*/false);
  const uint64_t killed_at = NowMicros();
  for (uint64_t i = 0; i < options.ops_per_flush; ++i) {
    BOXES_ASSIGN_OR_RETURN(const UpdateBuffer::Ticket ticket,
                           primary.buffer->InsertElementBefore(root.end));
    (void)ticket;  // this batch will never be acknowledged
  }
  if (primary.buffer->Flush().ok()) {
    return Status::Internal("flush succeeded on a dead device");
  }
  // Seal the dead primary: the pending ops were never acknowledged, and
  // Flush can never succeed again — discard rather than leak them into a
  // destructor failure.
  primary.buffer->DiscardPending();

  uint64_t first_survivor_ack = 0;
  if (options.warm_standby) {
    // ---- Fenced promotion of the hot standby. -----------------------------
    BOXES_RETURN_IF_ERROR(applier.Pump());  // drain anything still in flight
    const uint64_t old_token = primary.pipeline->fencing_token();
    BOXES_RETURN_IF_ERROR(applier.Promote());
    result.fencing_token = applier.fencing_token();
    if (result.fencing_token != old_token + 1) {
      return Status::Internal("promotion did not advance the fencing token");
    }

    // The survivor takes writes through its own pipeline; batch ids
    // continue exactly where the applier stopped, under the new token.
    WalPipeline standby_pipeline(&standby_cache, &standby_scheme,
                                 WalPipelineOptions{.checkpoint_interval = 4});
    BOXES_RETURN_IF_ERROR(standby_pipeline.Init());
    if (standby_pipeline.writer().next_batch_id() != applier.next_expected() ||
        standby_pipeline.fencing_token() != result.fencing_token) {
      return Status::Internal(
          "promoted pipeline did not adopt the standby's horizon and token");
    }
    UpdateBuffer standby_buffer(
        &standby_scheme,
        UpdateBufferOptions{.flush_threshold = 1024, .auto_flush = false});
    standby_pipeline.Attach(&standby_buffer);

    for (uint64_t f = 0; f < options.post_failover_flushes; ++f) {
      BOXES_RETURN_IF_ERROR(run_acked_flush(&standby_buffer));
      if (f == 0) {
        first_survivor_ack = NowMicros();
      }
    }

    // ---- Zombie check: the deposed primary does not know it is dead. ------
    // Its device is gone but its shipper isn't; a late ship must bounce off
    // the fencing token, not apply. A few sends ride out link drops.
    for (int i = 0; i < 8 && applier.fenced_rejects() == 0; ++i) {
      shipper.Ship(primary.pipeline->writer().generation(),
                   primary.pipeline->writer().next_batch_id(), {});
      BOXES_RETURN_IF_ERROR(applier.Pump());
    }
    if (applier.fenced_rejects() == 0) {
      return Status::Internal(
          "zombie primary's post-promotion ship was not fenced");
    }

    BOXES_RETURN_IF_ERROR(AuditSurvivor(&standby_scheme, acked, &result));
  } else {
    // ---- Cold failover: heal the device, recover the crash image. ---------
    primary.Destroy();
    PrimaryStack revived;
    revived.base = std::make_unique<FilePageStore>(
        options.db_path, options.page_size, FilePageStore::Mode::kOpen);
    BOXES_RETURN_IF_ERROR(revived.base->status());
    revived.fault =
        std::make_unique<FaultInjectionPageStore>(revived.base.get());
    revived.retry = std::make_unique<RetryingPageStore>(revived.fault.get());
    revived.cache = std::make_unique<PageCache>(revived.retry.get());
    revived.scheme = std::make_unique<WBox>(revived.cache.get());
    BOXES_ASSIGN_OR_RETURN(
        const WalRecoveryResult recovered,
        RecoverWithWal(
            revived.cache.get(), revived.scheme.get(),
            [&](PageId head) { return revived.scheme->Restore(head); }, {}));
    revived.pipeline = std::make_unique<WalPipeline>(
        revived.cache.get(), revived.scheme.get(),
        WalPipelineOptions{.checkpoint_interval = 0});
    BOXES_RETURN_IF_ERROR(revived.pipeline->InitFromRecovery(recovered));
    result.fencing_token = revived.pipeline->fencing_token();
    revived.buffer = std::make_unique<UpdateBuffer>(
        revived.scheme.get(),
        UpdateBufferOptions{.flush_threshold = 1024, .auto_flush = false});
    revived.pipeline->Attach(revived.buffer.get());

    for (uint64_t f = 0; f < options.post_failover_flushes; ++f) {
      BOXES_RETURN_IF_ERROR(run_acked_flush(revived.buffer.get()));
      if (f == 0) {
        first_survivor_ack = NowMicros();
      }
    }
    BOXES_RETURN_IF_ERROR(AuditSurvivor(revived.scheme.get(), acked, &result));
    primary = std::move(revived);
  }

  result.unavailability_us =
      first_survivor_ack > killed_at ? first_survivor_ack - killed_at : 0;
  result.shipped_batches = shipper.shipped_batches();
  result.ship_retries = shipper.ship_retries();
  result.fenced_rejects = applier.fenced_rejects();
  if (options.metrics != nullptr) {
    options.metrics->SetGauge("repl.drill_unavailability_us",
                              result.unavailability_us);
    options.metrics->IncrementCounter("repl.drill_lost_acked_ops",
                                      result.lost_acked_ops);
  }
  return result;
}

}  // namespace boxes::workload
