#ifndef BOXES_WORKLOAD_FLEET_RUNNER_H_
#define BOXES_WORKLOAD_FLEET_RUNNER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/cachelog/caching_store.h"
#include "core/common/labeling_scheme.h"
#include "query/twig.h"
#include "storage/circuit_breaker_store.h"
#include "storage/page_cache.h"
#include "storage/page_store.h"
#include "storage/retrying_store.h"
#include "util/histogram.h"
#include "util/metrics.h"
#include "util/status.h"
#include "workload/admission.h"
#include "xml/document.h"

namespace boxes::workload {

/// Configuration of a multi-tenant serving fleet (DESIGN.md §4j; ROADMAP
/// open item 3): N tenant documents spread over M shared page-store
/// devices, W worker threads driving mixed traffic with Zipf-skewed tenant
/// popularity through the full request-lifecycle stack — per-request
/// deadline (RequestContext), admission control, circuit breaker, retry,
/// degraded reads.
struct FleetOptions {
  size_t num_tenants = 8;
  size_t num_devices = 2;  // tenant t lives on device t % num_devices
  size_t workers = 4;
  uint64_t elements_per_doc = 300;  // two-level documents
  size_t page_size = 2048;
  size_t log_capacity = 256;  // mod-log entries per tenant store
  /// Tenant popularity skew (Random::Skewed theta); tenant 0 is hottest.
  double zipf_theta = 0.8;
  uint64_t seed = 42;
  /// Per-request deadline for read-path ops (lookup/open/twig), in
  /// microseconds of real time; 0 = unbounded. Mutating ops always run
  /// unbounded: aborting a half-applied structural insert to save
  /// milliseconds would trade latency for a corrupted tenant.
  uint64_t request_timeout_us = 100'000;
  /// Per-request I/O allowance for read-path ops (page-cache miss reads);
  /// RequestContext::kNoIoBudget = unlimited.
  uint64_t request_io_budget = UINT64_MAX;
  /// Which labeling scheme each tenant runs: "wbox" or "bbox".
  std::string scheme = "wbox";
  /// Stack a CircuitBreakerPageStore per device (the production setting).
  /// Off, the same faults are absorbed by retry budgets alone — the
  /// comparison run EXPERIMENTS.md reports.
  bool use_breaker = true;
  AdmissionOptions admission;
  RetryingStoreOptions retry;    // seed is offset per device
  CircuitBreakerOptions breaker;
  /// Registry receiving stack metrics (retry.*, breaker.*, admission.*,
  /// cachelog.*); null = none.
  MetricsRegistry* metrics = nullptr;
};

/// Traffic mix of one RunPhase call. Fractions must sum to <= 1; the
/// remainder is "open" traffic (a cold reference resolved from scratch —
/// the first lookup a freshly opened document handle pays).
struct FleetPhaseOptions {
  uint64_t ops_per_worker = 1000;
  double lookup_fraction = 0.60;  // warm cached-reference lookups
  double insert_fraction = 0.15;  // insert/delete under the epoch write lock
  double twig_fraction = 0.05;    // twig match over the tenant's live labels
};

/// Per-tenant outcome of one phase. Ops are classified exclusively:
/// exact + degraded + shed + deadline_expired + unavailable + hard_errors
/// == ops.
struct TenantPhaseStats {
  uint64_t ops = 0;
  uint64_t lookups = 0;
  uint64_t opens = 0;
  uint64_t inserts = 0;
  uint64_t twigs = 0;
  uint64_t exact = 0;              // served the authoritative answer
  uint64_t degraded = 0;           // served possibly stale (degraded read)
  uint64_t shed = 0;               // kResourceExhausted: admission or breaker
  uint64_t deadline_expired = 0;   // kDeadlineExceeded: request budget spent
  uint64_t unavailable = 0;        // kUnavailable: replica behind or fenced
  uint64_t hard_errors = 0;        // everything else — the SLO violations
  uint64_t lat_p50_us = 0;
  uint64_t lat_p99_us = 0;
  uint64_t lat_p999_us = 0;
  uint64_t lat_max_us = 0;
};

/// Fleet-wide outcome of one phase (per-tenant rows plus totals).
struct FleetPhaseStats {
  std::vector<TenantPhaseStats> tenants;
  double elapsed_s = 0;
  uint64_t ops = 0;
  uint64_t exact = 0;
  uint64_t degraded = 0;
  uint64_t shed = 0;
  uint64_t deadline_expired = 0;
  uint64_t unavailable = 0;
  uint64_t hard_errors = 0;
  double ops_per_sec = 0;
  /// Pages the device scrubbers currently hold in quarantine (a level, not
  /// a rate); filled by FleetRunner::ScrubDevices, 0 when no scrub ran.
  uint64_t quarantined_pages = 0;
};

/// The fleet harness. Usage:
///
///   FleetRunner fleet(options);
///   BOXES_RETURN_IF_ERROR(fleet.Setup());
///   fleet.device_fault(0)->SetFailProbability(0.05);   // arm faults
///   BOXES_ASSIGN_OR_RETURN(auto stats, fleet.RunPhase(phase));
///
/// Phases may be run back to back with fault settings changed in between
/// (a transient storm, then a permanent-poison episode, ...). Per-tenant
/// op COUNTS are a pure function of the seed — each worker's RNG draws a
/// fixed number of values per operation regardless of outcome or thread
/// interleaving — so two fleets with equal options execute identical
/// per-tenant traffic even though outcome classes may differ under racy
/// fault timing.
///
/// Device stack, bottom up: MemoryPageStore -> FaultInjectionPageStore
/// (thread-safe, the shared device) -> RetryingPageStore ->
/// CircuitBreakerPageStore (optional). Each tenant has its own non-retained
/// PageCache on its device's top store, its own scheme + EpochGuard, and a
/// CachingLabelStore for reference-cached, degradable reads. Insert ops
/// flush the tenant's cache under the write lock, so reader misses — and
/// therefore device I/O, faults, retries, and breaker activity — keep
/// happening at steady state.
class FleetRunner {
 public:
  explicit FleetRunner(FleetOptions options);
  ~FleetRunner();

  FleetRunner(const FleetRunner&) = delete;
  FleetRunner& operator=(const FleetRunner&) = delete;

  /// Builds devices and tenants, bulk loads every document, and warms the
  /// per-worker reference pools (faults should be armed AFTER Setup).
  Status Setup();

  /// Runs one traffic phase across all workers; returns per-tenant stats.
  StatusOr<FleetPhaseStats> RunPhase(const FleetPhaseOptions& phase);

  /// Drops every tenant's page cache (each under its epoch write lock), so
  /// the next phase starts cold. Legal between phases.
  Status DropCaches();

  /// Runs one full scrub pass over every device (at the fault-injection
  /// layer, where poisoned pages surface as Corruption) and returns the
  /// total quarantined-page count across the fleet — the level behind the
  /// scrub.quarantined_pages gauge. Legal between phases, not during one.
  StatusOr<uint64_t> ScrubDevices();

  size_t num_tenants() const { return options_.num_tenants; }
  size_t num_devices() const { return options_.num_devices; }
  size_t device_of(size_t tenant) const {
    return tenant % options_.num_devices;
  }

  /// Device internals, for arming faults and inspecting breaker/retry
  /// activity. `breaker` is null when options.use_breaker is false.
  MemoryPageStore* device_base(size_t device);
  FaultInjectionPageStore* device_fault(size_t device);
  RetryingPageStore* device_retry(size_t device);
  CircuitBreakerPageStore* device_breaker(size_t device);

  AdmissionController* admission() { return admission_.get(); }
  LabelingScheme* tenant_scheme(size_t tenant);
  CachingLabelStore* tenant_store(size_t tenant);
  PageCache* tenant_cache(size_t tenant);

 private:
  struct Device;
  struct Tenant;

  Status SetupTenant(size_t index);
  void WorkerLoop(size_t worker, const FleetPhaseOptions& phase,
                  std::vector<TenantPhaseStats>* stats,
                  std::vector<Histogram>* latency);
  Status DoLookup(size_t worker, size_t tenant, uint64_t pick, bool* stale);
  Status DoOpen(size_t tenant, uint64_t pick, bool* stale);
  Status DoInsert(size_t tenant, uint64_t pick);
  Status DoTwig(size_t tenant);

  const FleetOptions options_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::vector<std::unique_ptr<Tenant>> tenants_;
  std::unique_ptr<AdmissionController> admission_;
  // worker_refs_[worker][tenant][element]: caller-owned mutable reference
  // state is per worker — CachedLabelRefs must never be shared across
  // threads.
  std::vector<std::vector<std::vector<CachedLabelRef>>> worker_refs_;
  bool setup_done_ = false;
};

/// Copies a fleet phase's totals into `registry` under "<source>.*"
/// counters ("fleet.storm.exact", ...) plus per-tenant p99 samples in the
/// "<source>.tenant_p99_us" histogram. A null registry is a no-op.
void ExportFleetStats(const std::string& source, const FleetPhaseStats& stats,
                      MetricsRegistry* registry);

}  // namespace boxes::workload

#endif  // BOXES_WORKLOAD_FLEET_RUNNER_H_
