#ifndef BOXES_STORAGE_SUPERBLOCK_FORMAT_H_
#define BOXES_STORAGE_SUPERBLOCK_FORMAT_H_

#include <cstdint>

#include "util/coding.h"
#include "util/crc32c.h"

namespace boxes::superblock {

/// Page 0 of a checkpoint-enabled database is a dual-slot commit record.
/// Each slot is an independently checksummed (magic, sequence, checkpoint
/// chain head, WAL mark, fencing token) record; the slot with the highest
/// valid sequence number is the current checkpoint. A commit writes the
/// *inactive* slot and leaves the active one byte-identical, so a write of
/// page 0 torn at any prefix preserves a loadable record: the old slot
/// survives untouched and the half-written new slot fails its CRC.
///
/// Slot layout (40 bytes, format v4 "BXD4"):
///   [0..3]   magic "BXD4"
///   [4..11]  sequence number (monotonically increasing across commits)
///   [12..19] checkpoint metadata-chain head (kInvalidPageId = none yet)
///   [20..27] WAL mark: the id of the first op-log batch NOT covered by
///            this checkpoint (== the next batch id the log will assign).
///            Recovery replays batches >= the mark's generation; the mark
///            also seeds batch-id continuity across restarts.
///   [28..35] fencing token: the replication-role epoch (see
///            replication/). 0 on databases that never replicated. Each
///            promotion persists token+1 before the new primary accepts
///            writes, so a deposed ("zombie") primary's late ships — all
///            stamped with the old token — are rejected by every standby
///            that saw the promotion.
///   [36..39] CRC32C over bytes [0..35]
/// Slot A lives at page offset 0, slot B at offset 40; both fit any page
/// size >= 80 bytes (the smallest size any backend accepts is far above
/// that).
inline constexpr uint32_t kSlotMagic = 0x34445842u;  // "BXD4"
inline constexpr size_t kSlotSize = 40;
inline constexpr size_t kNumSlots = 2;

/// The pre-WAL v2 slot magic ("BOXESDB2", 8 bytes at offset 0; sequence at
/// [8..15], head at [16..23], CRC32C over [0..23] at [24..27]). v4 cannot
/// open v2 databases — the slot carries no WAL mark — but it must SAY so:
/// without this probe a v2 database fails as "no valid commit record",
/// which reads as data corruption rather than a format-version mismatch.
inline constexpr uint64_t kSlotMagicV2 = 0x32424453'45584f42ULL;

/// The pre-fencing v3 slot magic ("BXD3": 32-byte slot, no fencing token,
/// CRC over [0..27] at [28..31], slot B at offset 32). Same story as v2:
/// probed only to turn "no valid commit record" into a clear
/// format-version error.
inline constexpr uint32_t kSlotMagicV3 = 0x33445842u;

/// True when the slot bytes decode as an intact v2 slot (v2 magic and a
/// valid v2 CRC). Used only to pick the right error once no v4 slot
/// decoded; a half-written or scribbled v2 slot stays plain corruption.
inline bool IsLegacyV2Slot(const uint8_t* in) {
  return DecodeFixed64(in) == kSlotMagicV2 &&
         DecodeFixed32(in + 24) == Crc32c(in, 24);
}

/// True when the slot bytes decode as an intact v3 slot, at v3's 32-byte
/// layout. Same decode-then-CRC discipline as the v2 probe.
inline bool IsLegacyV3Slot(const uint8_t* in) {
  return DecodeFixed32(in) == kSlotMagicV3 &&
         DecodeFixed32(in + 28) == Crc32c(in, 28);
}

/// First batch id a fresh database's op log assigns.
inline constexpr uint64_t kFirstBatchId = 1;

struct Slot {
  bool valid = false;
  uint64_t sequence = 0;
  uint64_t head = UINT64_MAX;  // kInvalidPageId
  uint64_t wal_mark = kFirstBatchId;
  uint64_t fencing_token = 0;
};

inline void EncodeSlot(uint8_t* out, uint64_t sequence, uint64_t head,
                       uint64_t wal_mark = kFirstBatchId,
                       uint64_t fencing_token = 0) {
  EncodeFixed32(out, kSlotMagic);
  EncodeFixed64(out + 4, sequence);
  EncodeFixed64(out + 12, head);
  EncodeFixed64(out + 20, wal_mark);
  EncodeFixed64(out + 28, fencing_token);
  EncodeFixed32(out + 36, Crc32c(out, 36));
}

inline Slot DecodeSlot(const uint8_t* in) {
  Slot slot;
  if (DecodeFixed32(in) != kSlotMagic ||
      DecodeFixed32(in + 36) != Crc32c(in, 36)) {
    return slot;  // invalid
  }
  slot.valid = true;
  slot.sequence = DecodeFixed64(in + 4);
  slot.head = DecodeFixed64(in + 12);
  slot.wal_mark = DecodeFixed64(in + 20);
  slot.fencing_token = DecodeFixed64(in + 28);
  return slot;
}

/// Decodes both slots of a commit-record page and returns the index (0 or
/// 1) of the active one — valid with the highest sequence — or -1 if
/// neither slot is valid. `active`, if non-null, receives the decoded slot.
inline int PickActiveSlot(const uint8_t* page, Slot* active) {
  int best = -1;
  Slot best_slot;
  for (size_t i = 0; i < kNumSlots; ++i) {
    const Slot slot = DecodeSlot(page + i * kSlotSize);
    if (slot.valid && (best < 0 || slot.sequence > best_slot.sequence)) {
      best = static_cast<int>(i);
      best_slot = slot;
    }
  }
  if (best >= 0 && active != nullptr) {
    *active = best_slot;
  }
  return best;
}

}  // namespace boxes::superblock

#endif  // BOXES_STORAGE_SUPERBLOCK_FORMAT_H_
