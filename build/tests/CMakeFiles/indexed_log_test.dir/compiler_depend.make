# Empty compiler generated dependencies file for indexed_log_test.
# This may be replaced when dependencies are built.
