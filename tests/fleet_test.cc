// Fleet harness tests (DESIGN.md §4j): deterministic per-tenant traffic,
// exhaustive outcome classification, the zero-hard-error SLO under a
// transient storm, and breaker-led degradation under a permanent episode.

#include <vector>

#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/fleet_runner.h"

namespace boxes::workload {
namespace {

FleetOptions SmallFleet() {
  FleetOptions options;
  options.num_tenants = 4;
  options.num_devices = 2;
  options.workers = 3;
  options.elements_per_doc = 120;
  options.log_capacity = 0;  // basic mode: any mutation invalidates refs
  options.seed = 7;
  return options;
}

FleetPhaseOptions SmallPhase() {
  FleetPhaseOptions phase;
  phase.ops_per_worker = 300;
  phase.lookup_fraction = 0.55;
  phase.insert_fraction = 0.20;
  phase.twig_fraction = 0.05;
  return phase;
}

void ArmTransientFaults(FleetRunner* fleet, double p) {
  for (size_t d = 0; d < fleet->num_devices(); ++d) {
    fleet->device_fault(d)->SetSeed(0xfa017 + d);
    fleet->device_fault(d)->SetFailProbability(p, /*transient=*/true);
  }
}

TEST(FleetTest, PerTenantOpCountsAreSeedDeterministic) {
  // Two fleets, same options, run under different fault pressure: the
  // traffic a tenant receives is a pure function of the seed, independent
  // of outcomes and thread interleaving.
  FleetPhaseStats a;
  FleetPhaseStats b;
  {
    FleetRunner fleet(SmallFleet());
    ASSERT_OK(fleet.Setup());
    ArmTransientFaults(&fleet, 0.05);
    ASSERT_OK_AND_ASSIGN(a, fleet.RunPhase(SmallPhase()));
  }
  {
    FleetRunner fleet(SmallFleet());
    ASSERT_OK(fleet.Setup());
    ASSERT_OK_AND_ASSIGN(b, fleet.RunPhase(SmallPhase()));  // faults off
  }
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  uint64_t total = 0;
  for (size_t t = 0; t < a.tenants.size(); ++t) {
    EXPECT_EQ(a.tenants[t].ops, b.tenants[t].ops) << "tenant " << t;
    EXPECT_EQ(a.tenants[t].lookups, b.tenants[t].lookups) << "tenant " << t;
    EXPECT_EQ(a.tenants[t].opens, b.tenants[t].opens) << "tenant " << t;
    EXPECT_EQ(a.tenants[t].inserts, b.tenants[t].inserts) << "tenant " << t;
    EXPECT_EQ(a.tenants[t].twigs, b.tenants[t].twigs) << "tenant " << t;
    total += a.tenants[t].ops;
  }
  EXPECT_EQ(total, 3u * 300u);
  // Zipf skew: the hottest tenant sees more traffic than the coldest.
  EXPECT_GT(a.tenants.front().ops, a.tenants.back().ops);
}

TEST(FleetTest, OutcomeClassificationIsExhaustive) {
  FleetRunner fleet(SmallFleet());
  ASSERT_OK(fleet.Setup());
  ArmTransientFaults(&fleet, 0.05);
  ASSERT_OK_AND_ASSIGN(const FleetPhaseStats stats,
                       fleet.RunPhase(SmallPhase()));
  for (const TenantPhaseStats& t : stats.tenants) {
    EXPECT_EQ(t.ops, t.exact + t.degraded + t.shed + t.deadline_expired +
                         t.hard_errors);
    EXPECT_EQ(t.ops, t.lookups + t.opens + t.inserts + t.twigs);
  }
  EXPECT_EQ(stats.ops, stats.exact + stats.degraded + stats.shed +
                           stats.deadline_expired + stats.hard_errors);
}

TEST(FleetTest, TransientStormMeetsZeroHardErrorSlo) {
  // The ISSUE 8 acceptance gate in miniature: 5% per-op transient faults,
  // every op either exact, degraded, or shed/deadlined on purpose.
  FleetRunner fleet(SmallFleet());
  ASSERT_OK(fleet.Setup());
  ArmTransientFaults(&fleet, 0.05);
  ASSERT_OK_AND_ASSIGN(const FleetPhaseStats stats,
                       fleet.RunPhase(SmallPhase()));
  EXPECT_EQ(stats.hard_errors, 0u);
  EXPECT_GT(stats.exact, 0u);
}

TEST(FleetTest, PoisonedDevicesDegradeBehindTheBreaker) {
  FleetOptions options = SmallFleet();
  options.breaker.min_ops = 8;  // trip fast on unambiguous corruption
  FleetRunner fleet(options);
  ASSERT_OK(fleet.Setup());
  // A warm mixed phase fills every worker's reference caches.
  ASSERT_OK_AND_ASSIGN(const FleetPhaseStats warm,
                       fleet.RunPhase(SmallPhase()));
  EXPECT_EQ(warm.hard_errors, 0u);

  // Poison EVERY allocated page on every device and drop the caches:
  // all reads now need I/O and all I/O fails with Corruption.
  for (size_t d = 0; d < fleet.num_devices(); ++d) {
    uint64_t total = 0;
    std::vector<PageId> free_pages;
    fleet.device_base(d)->SnapshotAllocator(&total, &free_pages);
    for (PageId id = 0; id < total; ++id) {
      fleet.device_fault(d)->PoisonPage(id);
    }
  }
  ASSERT_OK(fleet.DropCaches());
  FleetPhaseOptions read_only = SmallPhase();
  read_only.lookup_fraction = 0.9;
  read_only.insert_fraction = 0.0;
  read_only.twig_fraction = 0.0;
  ASSERT_OK_AND_ASSIGN(const FleetPhaseStats stats,
                       fleet.RunPhase(read_only));
  // Warm references degrade to possibly-stale answers instead of failing.
  EXPECT_GT(stats.degraded, 0u);
  // The breakers open and take over with fast-fails.
  uint64_t opened = 0;
  uint64_t fast_fails = 0;
  for (size_t d = 0; d < fleet.num_devices(); ++d) {
    opened += fleet.device_breaker(d)->counters().opened.load();
    fast_fails += fleet.device_breaker(d)->counters().fast_fails.load();
  }
  EXPECT_GT(opened, 0u);
  EXPECT_GT(fast_fails, 0u);

  // Healing the devices restores exact service.
  for (size_t d = 0; d < fleet.num_devices(); ++d) {
    fleet.device_fault(d)->Heal();
  }
  ASSERT_OK_AND_ASSIGN(const FleetPhaseStats healed,
                       fleet.RunPhase(SmallPhase()));
  EXPECT_GT(healed.exact, 0u);
  EXPECT_EQ(healed.hard_errors, 0u);
}

TEST(FleetTest, BreakerlessFleetBurnsMoreRetriesOnDeadDevices) {
  // The breaker's reason to exist: against a permanently failing device,
  // the breakerless stack keeps paying full retry schedules per request.
  auto run_poisoned = [](bool use_breaker) {
    FleetOptions options = SmallFleet();
    options.use_breaker = use_breaker;
    FleetRunner fleet(options);
    EXPECT_OK(fleet.Setup());
    for (size_t d = 0; d < fleet.num_devices(); ++d) {
      // Every device op fails with a RETRYABLE error, forever, so retry
      // schedules actually run (Corruption would permanent-error out).
      fleet.device_fault(d)->SetFailProbability(1.0, /*transient=*/true);
    }
    EXPECT_OK(fleet.DropCaches());
    // Open-only traffic: cold references pay a full lookup every op, so
    // every op reaches the device. (Warm references would serve fresh from
    // their caches and never touch it.)
    FleetPhaseOptions opens_only = SmallPhase();
    opens_only.ops_per_worker = 150;
    opens_only.lookup_fraction = 0.0;
    opens_only.insert_fraction = 0.0;
    opens_only.twig_fraction = 0.0;
    EXPECT_OK(fleet.RunPhase(opens_only).status());
    uint64_t attempts = 0;
    for (size_t d = 0; d < fleet.num_devices(); ++d) {
      attempts += fleet.device_retry(d)->counters().attempts.load();
    }
    return attempts;
  };
  const uint64_t with_breaker = run_poisoned(true);
  const uint64_t without_breaker = run_poisoned(false);
  EXPECT_GT(without_breaker, with_breaker);
}

TEST(FleetTest, RejectsInvalidConfiguration) {
  FleetOptions options = SmallFleet();
  options.zipf_theta = 1.5;
  FleetRunner fleet(options);
  EXPECT_EQ(fleet.Setup().code(), StatusCode::kInvalidArgument);

  FleetRunner ok_fleet(SmallFleet());
  ASSERT_OK(ok_fleet.Setup());
  FleetPhaseOptions phase;
  phase.lookup_fraction = 0.9;
  phase.insert_fraction = 0.9;
  EXPECT_EQ(ok_fleet.RunPhase(phase).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace boxes::workload
