// Reproduces Figure 7: amortized update cost under the scattered insertion
// sequence (paper §7). Insertions are spread evenly over the document, the
// friendliest case for gap-based schemes: naive-k (k >= a few bits) should
// match or beat the BOXes here, with naive-1 the degenerate exception.

#include <cstdio>

#include "bench_common.h"
#include "util/flags.h"
#include "workload/sequences.h"

namespace boxes::bench {
namespace {

int Run(int argc, char** argv) {
  const bool smoke = ExtractSmokeFlag(&argc, argv);
  FlagParser flags;
  int64_t* base = flags.AddInt64("base", 10000, "base document elements");
  int64_t* inserts =
      flags.AddInt64("inserts", 2500, "elements inserted scattered");
  std::string* schemes = flags.AddString(
      "schemes",
      "wbox,wbox-o,bbox,bbox-o,naive-1,naive-4,naive-16,naive-64,ordpath",
      "comma-separated schemes");
  int64_t* page_size = flags.AddInt64("page_size", 8192, "block size");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  SmokeCap(smoke, base, 2000);
  SmokeCap(smoke, inserts, 500);

  std::printf(
      "FIG7: amortized update cost, scattered insertion sequence\n"
      "base=%lld elements, inserts=%lld elements "
      "(paper: 2000000 / 500000)\n\n",
      static_cast<long long>(*base), static_cast<long long>(*inserts));
  std::printf("%-12s %14s %14s %10s\n", "scheme", "avg I/Os/elem",
              "total I/Os", "p99 I/Os");

  for (const std::string& name : SplitSchemes(*schemes)) {
    SchemeUnderTest unit(static_cast<size_t>(*page_size));
    CheckOkOrDie(MakeScheme(name, &unit), "MakeScheme");
    workload::RunStats stats;
    CheckOkOrDie(
        workload::RunScatteredInsertion(unit.scheme.get(), unit.cache.get(),
                                        static_cast<uint64_t>(*base),
                                        static_cast<uint64_t>(*inserts),
                                        &stats),
        "scattered run");
    std::printf("%-12s %14.2f %14llu %10llu\n", name.c_str(),
                stats.MeanCost(),
                static_cast<unsigned long long>(stats.totals.total()),
                static_cast<unsigned long long>(
                    stats.per_op_cost.Percentile(0.99)));
  }
  std::printf(
      "\nExpected shape (paper Fig. 7): all schemes cheap; naive-k (k >= 4)\n"
      "shines since no gap overflows; naive-1 still relabels constantly\n"
      "(a single insertion already exhausts its 2-unit gaps).\n");
  return 0;
}

}  // namespace
}  // namespace boxes::bench

int main(int argc, char** argv) { return boxes::bench::Run(argc, argv); }
