#include "xml/generators.h"

#include <deque>
#include <vector>

namespace boxes::xml {

Document MakeTwoLevelDocument(uint64_t children) {
  Document doc;
  const ElementId root = doc.AddRoot("root");
  for (uint64_t i = 0; i < children; ++i) {
    doc.AddChild(root, "item");
  }
  return doc;
}

Document MakeRandomDocument(uint64_t elements, uint64_t max_depth,
                            uint64_t seed) {
  BOXES_CHECK(elements >= 1);
  BOXES_CHECK(max_depth >= 1);
  Random rng(seed);
  Document doc;
  doc.AddRoot("e0");
  std::vector<ElementId> eligible;  // elements with depth < max_depth
  std::vector<uint64_t> depth(1, 1);
  if (max_depth > 1) {
    eligible.push_back(0);
  }
  for (uint64_t i = 1; i < elements; ++i) {
    BOXES_CHECK(!eligible.empty());
    const size_t pick = rng.Uniform(eligible.size());
    const ElementId parent = eligible[pick];
    const ElementId child = doc.AddChild(parent, "e" + std::to_string(i));
    depth.push_back(depth[parent] + 1);
    if (depth[child] < max_depth) {
      eligible.push_back(child);
    }
  }
  return doc;
}

Document MakeBalancedDocument(uint64_t elements, uint64_t fanout) {
  BOXES_CHECK(elements >= 1);
  BOXES_CHECK(fanout >= 1);
  Document doc;
  doc.AddRoot("n");
  std::deque<ElementId> frontier{0};
  uint64_t created = 1;
  while (created < elements) {
    BOXES_CHECK(!frontier.empty());
    const ElementId parent = frontier.front();
    frontier.pop_front();
    for (uint64_t i = 0; i < fanout && created < elements; ++i) {
      frontier.push_back(doc.AddChild(parent, "n"));
      ++created;
    }
  }
  return doc;
}

}  // namespace boxes::xml
