#ifndef BOXES_STORAGE_WAL_H_
#define BOXES_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/common/labeling_scheme.h"
#include "core/common/update_buffer.h"
#include "storage/metadata_io.h"
#include "storage/page_cache.h"
#include "util/metrics.h"
#include "util/status.h"

namespace boxes {

/// Durable write-ahead op log (DESIGN.md §4i). The log generalizes the
/// paper's CL-tree modification log into a redo log for every scheme: each
/// UpdateBuffer flush appends one logical record per BatchOp — in the
/// batch's final, post-locality-sort apply order — and pays one fdatasync
/// *before* the batch touches the structure. That one barrier is what
/// turns "Flush returned OK" into "these ops survive any crash": recovery
/// restores the last committed checkpoint and replays the logged batches
/// through LabelingScheme::ReplayBatch, reproducing the exact pre-crash
/// op order and therefore the exact acknowledged LIDs. The dual-slot
/// checkpoint demotes from the unit of durability to a periodic
/// truncation point for the log.
///
/// The log lives *inside* the page store rather than in a sidecar file:
/// every appended batch occupies write-once pages (never rewriting bytes
/// an earlier sync covered, so a torn append can only damage the
/// unacknowledged batch), stamped with a header the recovery scan
/// recognizes. Storing log pages in the store means the page-level CRC32C
/// frames, the fault-injection harness (crash points and sync faults land
/// inside log appends like any other write), and online backup (the
/// database file IS the backup unit) all apply to the log for free.
///
/// Log pages are written through PageStore::WriteUnjournaled and are
/// deliberately *never* freed back to the allocator (see WalWriter's
/// recycle pool): the store's rollback journal reverts every journaled
/// post-checkpoint write when a crash image is opened, which is exactly
/// right for checkpoint state and exactly wrong for the op log — a
/// journaled log append would be undone by the very recovery that needs
/// to read it.
///
/// Log page layout (page payload; the store adds its own CRC frame):
///   [0..3]   magic "BWAL"
///   [4..11]  generation: the committed checkpoint sequence at append
///            time. A checkpoint with sequence S covers exactly the
///            batches of generations < S, so recovery replays pages with
///            generation >= the recovered sequence and truncation never
///            needs to rewrite the log — superseded pages are simply
///            freed, and any stale survivors fail the generation filter.
///   [12..19] batch id (monotonic across restarts; seeded from the
///            superblock's WAL mark)
///   [20..23] page_seq: this page's index within its batch
///   [24..27] page_count: pages in this batch (known up front, so the
///            scan can prove completeness)
///   [28..31] op_count: records in this batch
///   [32..35] attempt: retry discriminator; a batch re-appended after a
///            faulted append keeps its id but bumps the attempt, letting
///            the scan separate the copies (replay applies the last
///            complete one — ops may join the batch between the fault
///            and the retry, so only the final append is acknowledged)
///   [36..39] payload bytes used in this page
///   [40..43] CRC32C of header bytes [0..39]. The store's frame CRC
///            already covers the page; this inner CRC exists so the
///            recovery scan can never mistake a *data* page for a log
///            page on a magic collision — log pages are recycled across
///            generations (see WalWriter), so misidentification would be
///            replay of garbage, not just noise.
///   [44..]   record stream (records span pages within a batch)
///
/// Record framing (CRC32C-framed, one record per BatchOp):
///   [u32 body length][u32 CRC32C of body][body]
///   body: [u64 user_tag][u8 kind][u64 anchor][u64 anchor_end]
///         [u32 subtree length][serialized subtree XML]

inline constexpr uint32_t kWalPageMagic = 0x4c415742u;  // "BWAL"
inline constexpr size_t kWalPageHeaderSize = 44;

/// One decoded log record.
struct WalRecord {
  BatchOp::Kind kind = BatchOp::Kind::kInsertElementBefore;
  Lid anchor = kInvalidLid;
  Lid anchor_end = kInvalidLid;
  uint64_t user_tag = 0;
  std::string subtree_xml;  // empty unless kInsertSubtreeBefore
};

/// Serializes `ops` into the canonical CRC32C-framed record stream (the
/// byte layout above). This is THE wire format for a logged batch — the
/// WalWriter pages it onto the device and the replication shipper frames
/// it onto the link, so a standby replays byte-identical history.
/// InvalidArgument if a kInsertSubtreeBefore op carries no subtree.
Status EncodeWalRecordStream(const std::vector<BatchOp>& ops,
                             std::vector<uint8_t>* stream);

/// Decodes `op_count` framed records out of a record stream. Any framing,
/// CRC, or body-shape violation returns false — callers treat the whole
/// batch as torn, never as partially usable. A complete stream must be
/// consumed exactly (trailing garbage fails).
bool DecodeWalRecordStream(const std::vector<uint8_t>& stream,
                           uint32_t op_count, std::vector<WalRecord>* out);

/// Rebuilds executable BatchOps from decoded records: subtree XML is
/// re-parsed into documents appended to `docs` (which must outlive the
/// ops — each subtree op points into it). Parse failure after a CRC match
/// means the writer logged something unparsable: Corruption, not a torn
/// tail.
Status BuildOpsFromWalRecords(
    const std::vector<WalRecord>& records,
    std::vector<std::unique_ptr<xml::Document>>* docs,
    std::vector<BatchOp>* ops);

/// One appended batch as the recovery scan sees it: one attempt at one
/// batch id. `complete` means every page is present and readable and the
/// record stream decoded into exactly op_count CRC-valid records.
struct WalBatch {
  uint64_t generation = 0;
  uint64_t batch_id = 0;
  uint32_t attempt = 0;
  bool complete = false;
  std::vector<PageId> pages;
  std::vector<WalRecord> records;  // decoded only when complete
};

/// Result of a full-device log scan.
struct WalScan {
  /// Sorted by (batch_id, attempt).
  std::vector<WalBatch> batches;
  uint64_t scanned_pages = 0;    // device pages examined
  uint64_t wal_pages = 0;        // pages carrying the log magic
  uint64_t unreadable_pages = 0; // read/CRC errors (skipped, not fatal)
  uint64_t max_batch_id = 0;     // highest id on any log page
};

/// Scans the whole device for op-log pages, bypassing the cache. Read and
/// checksum failures skip the page (a torn log write must degrade to an
/// incomplete batch, not a failed recovery); they are counted in
/// `unreadable_pages`. Page 0 (the superblock) is never examined.
StatusOr<WalScan> ScanWal(PageStore* store);

/// Bounds and outcome of a replay pass.
struct WalReplayOptions {
  /// Replay only batches with generation >= this (the recovered
  /// checkpoint's sequence number; older batches are already inside the
  /// checkpoint).
  uint64_t min_generation = 0;
  /// Point-in-time bound: replay stops after this batch id (inclusive).
  /// Complete batches beyond it are counted, not applied — re-checkpoint
  /// and truncate afterwards to seal the restore, or another recovery
  /// will replay them again.
  uint64_t to_batch = UINT64_MAX;
  /// Id the FIRST replayed batch must carry (the recovered checkpoint's
  /// WAL mark); 0 disables the check. The mid-replay gap check only sees
  /// holes *between* scanned batches — if every page of the batch at the
  /// mark was unreadable, its group is absent from the scan entirely and
  /// replay would otherwise start silently past the hole. RecoverWithWal
  /// always sets this; a mismatch is a torn tail before anything applies.
  uint64_t first_batch = 0;
};

struct WalReplayStats {
  uint64_t batches_replayed = 0;
  uint64_t ops_replayed = 0;
  /// Old-generation or duplicate-id batches passed over.
  uint64_t batches_skipped = 0;
  /// Complete batches beyond the to_batch bound (left unapplied).
  uint64_t batches_beyond_bound = 0;
  /// Replay stopped cleanly at an incomplete (torn) batch.
  bool torn_tail = false;
  uint64_t last_replayed_batch = 0;
};

/// Called after each replayed batch for every op, in apply order, with
/// op.result populated — the hook higher layers (dbtool's handle
/// registry) use to re-learn what the replayed inserts created.
using WalReplayObserver = std::function<void(const BatchOp& op)>;

/// Replays a scanned log through scheme->ReplayBatch: batch-atomic (only
/// complete batches apply), order-preserving (no re-sort — see
/// LabelingScheme::ReplayBatch), idempotent (duplicate batch ids apply
/// once), and clean-stopping — an incomplete batch ends the replay with
/// Status::OK and stats->torn_tail, never an error, and later batches are
/// not applied even if complete (they were never acknowledged; applying
/// across a hole would reorder history). Each batch applies under one
/// EpochWriteLock with I/O attributed to IoPhase::kLogReplay.
Status ReplayScannedWal(PageCache* cache, LabelingScheme* scheme,
                        const WalScan& scan, const WalReplayOptions& options,
                        WalReplayStats* stats,
                        MetricsRegistry* metrics = nullptr,
                        const WalReplayObserver& observer = nullptr);

/// Appends batches to the op log. Single-writer, like the UpdateBuffer
/// that feeds it.
class WalWriter {
 public:
  explicit WalWriter(PageCache* cache);

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends `ops` as the next batch — pooled or fresh pages, one Sync()
  /// — and consumes the batch id on success. On error the batch id is NOT
  /// consumed (a retry re-appends under the same id with a bumped attempt
  /// number) and any pages already written stay tracked, to be reclaimed
  /// by the next truncation.
  Status AppendBatch(const std::vector<BatchOp>& ops);

  /// Truncation: retires every live log page into the recycle pool and
  /// starts appending under `generation` (the sequence of the checkpoint
  /// that just committed, which covers all of them). Call only after
  /// CommitCheckpoint succeeded. Log pages are never given back to the
  /// allocator — a freed page's later reuse gets journaled, and the
  /// rollback journal would then revert acknowledged appends on recovery.
  /// Below-floor allocations the acquisition path had to reject ARE freed
  /// here (they were never written unjournaled, so they are ordinary
  /// pages).
  Status StartGeneration(uint64_t generation);

  /// Hands the writer the log pages found by a recovery scan so the next
  /// truncation retires them into the pool (their batches are either
  /// replayed into the next checkpoint or stale). This is also how prior
  /// sessions' pool pages come back — they still carry the log magic, so
  /// the scan finds them and nothing leaks.
  void AdoptPages(const WalScan& scan);

  uint64_t generation() const { return generation_; }
  uint64_t next_batch_id() const { return next_batch_id_; }
  void set_generation(uint64_t generation) { generation_ = generation; }
  void set_next_batch_id(uint64_t id) { next_batch_id_ = id; }
  /// Log pages currently tracked: live (not yet truncated) + pooled.
  size_t tracked_pages() const { return active_.size() + pool_.size(); }
  /// Pages waiting in the recycle pool.
  size_t pooled_pages() const { return pool_.size(); }

  void SetMetrics(MetricsRegistry* metrics) { metrics_ = metrics; }

 private:
  /// Next page to append into: the pool if it has one, else the allocator
  /// — but only accepting pages at or above the store's unjournaled floor
  /// (a page freed since the last checkpoint may carry a journaled
  /// pre-image and may be referenced by the committed checkpoint; writing
  /// it unjournaled could corrupt a rollback). Rejected allocations are
  /// parked in `rejects_` so the allocator cannot hand them straight
  /// back, and are freed at the next truncation.
  StatusOr<PageId> AcquirePage();

  PageCache* cache_;  // not owned; pages bypass it (see .cc)
  uint64_t generation_ = 1;
  uint64_t next_batch_id_ = 1;
  uint32_t pending_attempt_ = 0;
  std::vector<PageId> active_;   // written this generation (live log)
  std::vector<PageId> pool_;     // retired log pages awaiting reuse
  std::vector<PageId> rejects_;  // below-floor allocations, freed at trunc
  MetricsRegistry* metrics_ = nullptr;  // not owned
};

/// Everything a caller needs to resume writing after recovery.
struct WalRecoveryResult {
  WalReplayStats replay;
  /// Committed checkpoint sequence (= the new write generation).
  uint64_t generation = 0;
  /// Checkpoint chain head; kInvalidPageId when the database crashed
  /// before its first checkpoint (the scheme was left empty and the whole
  /// log replayed).
  PageId checkpoint_head = kInvalidPageId;
  /// First batch id the resumed log must assign.
  uint64_t next_batch_id = 1;
  /// The scan, for WalWriter::AdoptPages.
  WalScan scan;
};

/// Restores the scheme's checkpoint via `restore` (the caller owns its
/// chain layout; pass scheme->Restore for a bare scheme) and replays the
/// op log. The cache must sit on a store already opened/rolled back with
/// FilePageStore::Mode::kOpen (or an equivalent in-memory image).
using SchemeRestorer = std::function<Status(PageId head)>;
StatusOr<WalRecoveryResult> RecoverWithWal(
    PageCache* cache, LabelingScheme* scheme, const SchemeRestorer& restore,
    const WalReplayOptions& bounds = {}, MetricsRegistry* metrics = nullptr,
    const WalReplayObserver& observer = nullptr);

/// Configuration of WalPipeline.
struct WalPipelineOptions {
  /// Flushes between durable checkpoints (the log truncation cadence).
  /// 1 degenerates to checkpoint-per-batch (PR 6's pipeline); larger
  /// intervals trade replay time at recovery for fewer checkpoint
  /// commits. Durability is interval-independent: every flush still pays
  /// its one log fdatasync.
  uint64_t checkpoint_interval = 64;
};

/// Glue binding an UpdateBuffer to the op log: installs the durability
/// hook (append + sync before apply) and the commit hook (checkpoint +
/// truncate every checkpoint_interval flushes), and owns the batch-id /
/// generation bookkeeping against the superblock's WAL mark.
class WalPipeline {
 public:
  /// Builds the checkpoint chain and returns its head. The default is
  /// scheme->Checkpoint(); callers with extra durable state (dbtool's
  /// handle registry) supply their own.
  using CheckpointBuilder = std::function<StatusOr<PageId>()>;

  WalPipeline(PageCache* cache, LabelingScheme* scheme,
              WalPipelineOptions options = {});

  WalPipeline(const WalPipeline&) = delete;
  WalPipeline& operator=(const WalPipeline&) = delete;

  void SetCheckpointBuilder(CheckpointBuilder builder) {
    checkpoint_builder_ = std::move(builder);
  }

  /// Observer of every durably appended batch, called right after the
  /// batch's fdatasync succeeds (and before the batch applies), with the
  /// id it was logged under. This is the replication tap: a WalShipper
  /// streams the ops to standbys from here. The hook must not fail —
  /// replication is asynchronous by design; a lost ship is healed by
  /// catch-up (see replication/wal_shipper.h), never by failing the
  /// primary's own durability path.
  using ShipHook = std::function<void(uint64_t generation, uint64_t batch_id,
                                      const std::vector<BatchOp>& ops)>;
  void SetShipHook(ShipHook hook) { ship_hook_ = std::move(hook); }

  /// Fresh or idle database: reads the superblock (sequence + WAL mark)
  /// and makes it durable — the generation filter is anchored there, so
  /// it must hit the disk before the first append does.
  Status Init();

  /// Continues a recovered database: seeds ids from the recovery result
  /// and adopts the scanned log pages for the next truncation.
  Status InitFromRecovery(const WalRecoveryResult& recovered);

  /// Installs the durability + commit hooks on `buffer`. The buffer must
  /// outlive this pipeline or clear its hooks first.
  void Attach(UpdateBuffer* buffer);

  /// Checkpoints now (regardless of the interval): builds the chain,
  /// commits it with the current WAL mark, frees the superseded chain,
  /// and truncates the log. Runs synchronously between flushes.
  Status CheckpointNow();

  uint64_t flushes_since_checkpoint() const {
    return flushes_since_checkpoint_;
  }
  WalWriter& writer() { return writer_; }

  /// The replication fencing token this node operates under (loaded from
  /// the superblock by Init/InitFromRecovery). A promotion calls
  /// SetFencingToken(token + 1) and then CheckpointNow() — the token is
  /// persisted in the same dual-slot commit as everything else, so a node
  /// restart cannot forget it was promoted (or deposed).
  uint64_t fencing_token() const { return fencing_token_; }
  void SetFencingToken(uint64_t token) { fencing_token_ = token; }

 private:
  Status OnFlushCommitted();

  PageCache* cache_;         // not owned
  LabelingScheme* scheme_;   // not owned
  const WalPipelineOptions options_;
  WalWriter writer_;
  CheckpointBuilder checkpoint_builder_;
  ShipHook ship_hook_;
  uint64_t flushes_since_checkpoint_ = 0;
  uint64_t fencing_token_ = 0;
};

}  // namespace boxes

#endif  // BOXES_STORAGE_WAL_H_
