#include "util/flags.h"

#include <cstdio>
#include <cstdlib>

namespace boxes {

int64_t* FlagParser::AddInt64(const std::string& name, int64_t default_value,
                              const std::string& help) {
  Flag& flag = flags_[name];
  flag.type = Type::kInt64;
  flag.help = help;
  flag.int_value = default_value;
  flag.default_text = std::to_string(default_value);
  return &flag.int_value;
}

double* FlagParser::AddDouble(const std::string& name, double default_value,
                              const std::string& help) {
  Flag& flag = flags_[name];
  flag.type = Type::kDouble;
  flag.help = help;
  flag.double_value = default_value;
  flag.default_text = std::to_string(default_value);
  return &flag.double_value;
}

bool* FlagParser::AddBool(const std::string& name, bool default_value,
                          const std::string& help) {
  Flag& flag = flags_[name];
  flag.type = Type::kBool;
  flag.help = help;
  flag.bool_value = default_value;
  flag.default_text = default_value ? "true" : "false";
  return &flag.bool_value;
}

std::string* FlagParser::AddString(const std::string& name,
                                   const std::string& default_value,
                                   const std::string& help) {
  Flag& flag = flags_[name];
  flag.type = Type::kString;
  flag.help = help;
  flag.string_value = default_value;
  flag.default_text = default_value;
  return &flag.string_value;
}

bool FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(Usage(argv[0]).c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unrecognized argument: %s\n", arg.c_str());
      return false;
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      auto it = flags_.find(name);
      if (it != flags_.end() && it->second.type == Type::kBool) {
        value = "true";  // `--flag` form for booleans
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "flag --%s is missing a value\n", name.c_str());
        return false;
      }
    }
    if (!SetFlag(name, value)) {
      return false;
    }
  }
  return true;
}

bool FlagParser::SetFlag(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
    return false;
  }
  Flag& flag = it->second;
  char* end = nullptr;
  switch (flag.type) {
    case Type::kInt64:
      flag.int_value = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        std::fprintf(stderr, "flag --%s expects an integer, got '%s'\n",
                     name.c_str(), value.c_str());
        return false;
      }
      break;
    case Type::kDouble:
      flag.double_value = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        std::fprintf(stderr, "flag --%s expects a number, got '%s'\n",
                     name.c_str(), value.c_str());
        return false;
      }
      break;
    case Type::kBool:
      if (value == "true" || value == "1") {
        flag.bool_value = true;
      } else if (value == "false" || value == "0") {
        flag.bool_value = false;
      } else {
        std::fprintf(stderr, "flag --%s expects true/false, got '%s'\n",
                     name.c_str(), value.c_str());
        return false;
      }
      break;
    case Type::kString:
      flag.string_value = value;
      break;
  }
  return true;
}

std::string FlagParser::Usage(const std::string& program) const {
  std::string out = "usage: " + program + " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    out += "  --" + name + " (default " + flag.default_text + ")\n      " +
           flag.help + "\n";
  }
  return out;
}

}  // namespace boxes
