#include "storage/io_stats.h"

#include <cstdio>

namespace boxes {

const char* IoPhaseName(IoPhase phase) {
  switch (phase) {
    case IoPhase::kOther:
      return "other";
    case IoPhase::kSearch:
      return "search";
    case IoPhase::kRelabel:
      return "relabel";
    case IoPhase::kRebalance:
      return "rebalance";
    case IoPhase::kLidfDeref:
      return "lidf_deref";
    case IoPhase::kLogReplay:
      return "log_replay";
    case IoPhase::kBulkLoad:
      return "bulk_load";
  }
  return "unknown";
}

std::string IoStats::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "reads=%llu writes=%llu total=%llu",
                static_cast<unsigned long long>(reads),
                static_cast<unsigned long long>(writes),
                static_cast<unsigned long long>(total()));
  return buf;
}

}  // namespace boxes
