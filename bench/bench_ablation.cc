// Ablations of the design choices DESIGN.md calls out:
//   (a) B-BOX minimum fill B/2 vs B/4 under a mixed insert/delete churn at
//       one location (paper §5's argument for the relaxed bound);
//   (b) ordinal size-field maintenance overhead (B-BOX vs B-BOX-O and
//       W-BOX vs ordinal W-BOX insert/delete costs);
//   (c) bulk-load fill fraction vs the cost of subsequent insertions.

#include <cstdio>

#include "bench_common.h"
#include "util/flags.h"
#include "util/random.h"
#include "workload/sequences.h"
#include "xml/generators.h"

namespace boxes::bench {
namespace {

struct ChurnResult {
  double mean_cost = 0;
  uint64_t splits = 0;
  uint64_t merges = 0;
};

ChurnResult ChurnCost(BBox* scheme, PageCache* cache,
                      const std::vector<NewElement>& lids, uint64_t rounds,
                      uint64_t burst) {
  // Burst churn at one spot: insert `burst` elements, then delete them
  // again. With min fill B/2 a split leaves nodes right at the merge
  // threshold, so every cycle pays split+merge reorganizations; with B/4
  // the hysteresis gap absorbs the burst.
  workload::RunStats stats;
  std::vector<NewElement> pool;
  for (uint64_t round = 0; round < rounds; ++round) {
    for (uint64_t i = 0; i < burst; ++i) {
      NewElement fresh;
      CheckOkOrDie(workload::MeasureOp(
                       cache,
                       [&]() -> Status {
                         BOXES_ASSIGN_OR_RETURN(
                             fresh, scheme->InsertElementBefore(
                                        lids[lids.size() / 2].start));
                         return Status::OK();
                       },
                       &stats),
                   "churn insert");
      pool.push_back(fresh);
    }
    while (!pool.empty()) {
      const NewElement victim = pool.back();
      pool.pop_back();
      CheckOkOrDie(workload::MeasureOp(
                       cache,
                       [&]() -> Status {
                         BOXES_RETURN_IF_ERROR(scheme->Delete(victim.start));
                         return scheme->Delete(victim.end);
                       },
                       &stats),
                   "churn delete");
    }
  }
  ChurnResult result;
  result.mean_cost = stats.MeanCost();
  result.splits = scheme->split_count();
  result.merges = scheme->merge_count();
  return result;
}

void AblateMinFill(uint64_t elements, uint64_t rounds, size_t page_size) {
  std::printf(
      "(a) B-BOX min fill under burst insert/delete churn at one spot\n"
      "    (%llu rounds of +200/-200 elements; paper: B/2 is susceptible\n"
      "    to split/merge thrashing, B/4's hysteresis absorbs the bursts;\n"
      "    contiguous LID allocation keeps each event cheap here, so the\n"
      "    event COUNT is the telling column)\n",
      static_cast<unsigned long long>(rounds));
  std::printf("    %-10s %16s %10s %10s\n", "min fill", "avg I/Os per op",
              "splits", "merges");
  for (const std::string& name : {std::string("bbox"), std::string("bbox-4")}) {
    SchemeUnderTest unit(page_size);
    CheckOkOrDie(MakeScheme(name, &unit), "MakeScheme");
    const xml::Document doc = xml::MakeTwoLevelDocument(elements);
    std::vector<NewElement> lids;
    CheckOkOrDie(workload::UnmeasuredOp(
                     unit.cache.get(),
                     [&] { return unit.scheme->BulkLoad(doc, &lids); }),
                 "BulkLoad");
    const ChurnResult result =
        ChurnCost(static_cast<BBox*>(unit.scheme.get()), unit.cache.get(),
                  lids, rounds, /*burst=*/200);
    std::printf("    %-10s %16.2f %10llu %10llu\n",
                name == "bbox" ? "B/2" : "B/4", result.mean_cost,
                static_cast<unsigned long long>(result.splits),
                static_cast<unsigned long long>(result.merges));
  }
  std::printf("\n");
}

void AblateOrdinal(uint64_t elements, uint64_t inserts, size_t page_size) {
  std::printf(
      "(b) ordinal size-field maintenance overhead: concentrated inserts,\n"
      "    then deletion of every inserted element\n");
  std::printf("    %-14s %16s %16s\n", "scheme", "insert I/Os/elem",
              "delete I/Os/elem");
  for (const std::string& name :
       {std::string("bbox"), std::string("bbox-o"), std::string("wbox"),
        std::string("wbox-ordinal")}) {
    SchemeUnderTest unit(page_size);
    CheckOkOrDie(MakeScheme(name, &unit), "MakeScheme");
    workload::RunStats insert_stats;
    CheckOkOrDie(
        workload::RunConcentratedInsertion(unit.scheme.get(),
                                           unit.cache.get(), elements,
                                           inserts, &insert_stats),
        "concentrated run");
    // Delete a fraction of the base document's children, measured.
    const xml::Document doc = xml::MakeTwoLevelDocument(elements - 1);
    (void)doc;
    workload::RunStats delete_stats;
    // Fresh unit: deletes against a bulk-loaded two-level document.
    SchemeUnderTest delete_unit(page_size);
    CheckOkOrDie(MakeScheme(name, &delete_unit), "MakeScheme");
    const xml::Document base = xml::MakeTwoLevelDocument(elements);
    std::vector<NewElement> lids;
    CheckOkOrDie(
        workload::UnmeasuredOp(
            delete_unit.cache.get(),
            [&] { return delete_unit.scheme->BulkLoad(base, &lids); }),
        "BulkLoad");
    for (uint64_t i = 1; i < lids.size(); i += 4) {
      CheckOkOrDie(workload::MeasureOp(
                       delete_unit.cache.get(),
                       [&]() -> Status {
                         BOXES_RETURN_IF_ERROR(
                             delete_unit.scheme->Delete(lids[i].start));
                         return delete_unit.scheme->Delete(lids[i].end);
                       },
                       &delete_stats),
                   "delete"); 
    }
    std::printf("    %-14s %16.2f %16.2f\n", name.c_str(),
                insert_stats.MeanCost(), delete_stats.MeanCost());
  }
  std::printf(
      "    Expected: ordinal variants pay a tree walk per update for the\n"
      "    size fields — visible on B-BOX inserts and W-BOX deletes\n"
      "    (paper: W-BOX delete O(1) -> O(log_B N) with ordinals).\n\n");
}

void AblateFillFraction(uint64_t elements, uint64_t inserts,
                        size_t page_size) {
  std::printf(
      "(c) bulk-load fill fraction vs subsequent insert cost (W-BOX)\n");
  std::printf("    %-8s %16s %12s\n", "fill", "avg I/Os/elem",
              "pages@load");
  for (double fill : {0.55, 0.75, 0.95}) {
    SchemeUnderTest unit(page_size);
    WBoxOptions options;
    options.bulk_fill_fraction = fill;
    unit.scheme = std::make_unique<WBox>(unit.cache.get(), options);
    const xml::Document doc = xml::MakeTwoLevelDocument(elements);
    std::vector<NewElement> lids;
    CheckOkOrDie(workload::UnmeasuredOp(
                     unit.cache.get(),
                     [&] { return unit.scheme->BulkLoad(doc, &lids); }),
                 "BulkLoad");
    StatusOr<SchemeStats> load_stats = unit.scheme->GetStats();
    CheckOkOrDie(load_stats.status(), "GetStats");
    Random rng(5);
    workload::RunStats stats;
    for (uint64_t i = 0; i < inserts; ++i) {
      CheckOkOrDie(
          workload::MeasureOp(
              unit.cache.get(),
              [&] {
                return unit.scheme
                    ->InsertElementBefore(
                        lids[1 + rng.Uniform(lids.size() - 1)].start)
                    .status();
              },
              &stats),
          "insert");
    }
    std::printf("    %-8.2f %16.2f %12llu\n", fill, stats.MeanCost(),
                static_cast<unsigned long long>(load_stats->index_pages));
  }
  std::printf(
      "    Expected: fuller packing uses fewer pages but splits sooner\n"
      "    under subsequent insertions.\n");
}

int Run(int argc, char** argv) {
  const bool smoke = ExtractSmokeFlag(&argc, argv);
  FlagParser flags;
  int64_t* elements = flags.AddInt64("elements", 10000, "base elements");
  int64_t* inserts = flags.AddInt64("inserts", 3000, "measured inserts");
  int64_t* churn_rounds =
      flags.AddInt64("churn_rounds", 10, "burst churn rounds");
  int64_t* page_size = flags.AddInt64("page_size", 8192, "block size");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  SmokeCap(smoke, elements, 2000);
  SmokeCap(smoke, inserts, 500);
  SmokeCap(smoke, churn_rounds, 3);
  std::printf("ABL: design-choice ablations\n\n");
  AblateMinFill(static_cast<uint64_t>(*elements),
                static_cast<uint64_t>(*churn_rounds),
                static_cast<size_t>(*page_size));
  AblateOrdinal(static_cast<uint64_t>(*elements),
                static_cast<uint64_t>(*inserts),
                static_cast<size_t>(*page_size));
  AblateFillFraction(static_cast<uint64_t>(*elements),
                     static_cast<uint64_t>(*inserts),
                     static_cast<size_t>(*page_size));
  return 0;
}

}  // namespace
}  // namespace boxes::bench

int main(int argc, char** argv) { return boxes::bench::Run(argc, argv); }
