#include "core/common/label.h"

#include <algorithm>
#include <bit>

#include "util/status.h"

namespace boxes {

Label Label::FromScalar(uint64_t value) {
  Label label;
  label.components_.push_back(value);
  return label;
}

Label Label::FromBigUint(const BigUint& value, size_t width_limbs) {
  BOXES_CHECK(value.LimbCount() <= width_limbs);
  std::vector<uint8_t> bytes(width_limbs * 8);
  value.Serialize(bytes.data(), width_limbs);
  Label label;
  label.components_.resize(width_limbs);
  // Serialize() produced little-endian limb order; reverse for big-endian
  // component order so lexicographic comparison equals numeric comparison.
  for (size_t i = 0; i < width_limbs; ++i) {
    uint64_t limb = 0;
    for (size_t b = 0; b < 8; ++b) {
      limb |= static_cast<uint64_t>(bytes[i * 8 + b]) << (8 * b);
    }
    label.components_[width_limbs - 1 - i] = limb;
  }
  return label;
}

Label Label::FromComponents(std::vector<uint64_t> components) {
  Label label;
  label.components_ = std::move(components);
  return label;
}

uint64_t Label::scalar() const {
  BOXES_CHECK(components_.size() == 1);
  return components_[0];
}

BigUint Label::ToBigUint() const {
  BigUint value;
  for (uint64_t component : components_) {
    value = value.ShiftLeft(64).Add(BigUint(component));
  }
  return value;
}

int Label::Compare(const Label& other) const {
  const size_t n = std::min(components_.size(), other.components_.size());
  for (size_t i = 0; i < n; ++i) {
    if (components_[i] != other.components_[i]) {
      return components_[i] < other.components_[i] ? -1 : 1;
    }
  }
  if (components_.size() == other.components_.size()) {
    return 0;
  }
  return components_.size() < other.components_.size() ? -1 : 1;
}

uint32_t Label::BitLength() const {
  if (components_.empty()) {
    return 0;
  }
  uint64_t max_component = 0;
  for (uint64_t c : components_) {
    max_component = std::max(max_component, c);
  }
  const uint32_t per_component =
      max_component == 0
          ? 1
          : static_cast<uint32_t>(64 - std::countl_zero(max_component));
  return per_component * static_cast<uint32_t>(components_.size());
}

std::string Label::ToString() const {
  if (components_.size() == 1) {
    return std::to_string(components_[0]);
  }
  std::string out = "(";
  for (size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += std::to_string(components_[i]);
  }
  out += ")";
  return out;
}

bool IsAncestor(const ElementLabels& ancestor,
                const ElementLabels& descendant) {
  return ancestor.start < descendant.start && descendant.end < ancestor.end;
}

bool PrecedesInDocumentOrder(const ElementLabels& a, const ElementLabels& b) {
  return a.start < b.start;
}

}  // namespace boxes
