#include "xml/document.h"

#include <algorithm>

namespace boxes::xml {

ElementId Document::AddRoot(std::string tag) {
  BOXES_CHECK(elements_.empty());
  elements_.push_back(Element{std::move(tag), kInvalidElement, {}});
  root_ = 0;
  return root_;
}

ElementId Document::AddChild(ElementId parent, std::string tag) {
  BOXES_CHECK(parent < elements_.size());
  const ElementId id = elements_.size();
  elements_.push_back(Element{std::move(tag), parent, {}});
  elements_[parent].children.push_back(id);
  return id;
}

ElementId Document::AddChildAt(ElementId parent, size_t index,
                               std::string tag) {
  BOXES_CHECK(parent < elements_.size());
  BOXES_CHECK(index <= elements_[parent].children.size());
  const ElementId id = elements_.size();
  elements_.push_back(Element{std::move(tag), parent, {}});
  auto& siblings = elements_[parent].children;
  siblings.insert(siblings.begin() + static_cast<ptrdiff_t>(index), id);
  return id;
}

uint64_t Document::Depth() const {
  if (empty()) {
    return 0;
  }
  uint64_t max_depth = 0;
  // (element, depth) DFS without recursion.
  std::vector<std::pair<ElementId, uint64_t>> stack{{root_, 1}};
  while (!stack.empty()) {
    const auto [id, depth] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, depth);
    for (ElementId child : elements_[id].children) {
      stack.push_back({child, depth + 1});
    }
  }
  return max_depth;
}

uint64_t Document::SubtreeSize(ElementId id) const {
  BOXES_CHECK(id < elements_.size());
  uint64_t count = 0;
  std::vector<ElementId> stack{id};
  while (!stack.empty()) {
    const ElementId cur = stack.back();
    stack.pop_back();
    ++count;
    for (ElementId child : elements_[cur].children) {
      stack.push_back(child);
    }
  }
  return count;
}

std::vector<ElementId> Document::PreorderIds() const {
  std::vector<ElementId> order;
  order.reserve(elements_.size());
  if (empty()) {
    return order;
  }
  std::vector<ElementId> stack{root_};
  while (!stack.empty()) {
    const ElementId id = stack.back();
    stack.pop_back();
    order.push_back(id);
    const auto& children = elements_[id].children;
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return order;
}

void Document::ForEachTag(
    const std::function<void(ElementId, bool is_start)>& fn) const {
  if (empty()) {
    return;
  }
  // Entries are (element, next_child_index); an element is "entered" (start
  // tag) when pushed and "exited" (end tag) after its last child.
  struct StackEntry {
    ElementId id;
    size_t next_child;
  };
  std::vector<StackEntry> stack;
  stack.push_back({root_, 0});
  fn(root_, true);
  while (!stack.empty()) {
    StackEntry& top = stack.back();
    const auto& children = elements_[top.id].children;
    if (top.next_child < children.size()) {
      const ElementId child = children[top.next_child++];
      fn(child, true);
      stack.push_back({child, 0});
    } else {
      fn(top.id, false);
      stack.pop_back();
    }
  }
}

Document Document::ExtractSubtree(ElementId id) const {
  BOXES_CHECK(id < elements_.size());
  Document out;
  out.AddRoot(elements_[id].tag);
  // For each (src, dst) pair, append src's children under dst in document
  // order, then recurse (stack-based).
  std::vector<std::pair<ElementId, ElementId>> work;  // (src, dst)
  work.push_back({id, 0});
  while (!work.empty()) {
    const auto [src, dst] = work.back();
    work.pop_back();
    const auto& children = elements_[src].children;
    std::vector<ElementId> dst_children;
    dst_children.reserve(children.size());
    for (ElementId child : children) {
      dst_children.push_back(out.AddChild(dst, elements_[child].tag));
    }
    for (size_t i = children.size(); i-- > 0;) {
      work.push_back({children[i], dst_children[i]});
    }
  }
  return out;
}

Status Document::Validate() const {
  if (empty()) {
    return Status::OK();
  }
  if (root_ >= elements_.size()) {
    return Status::Corruption("root out of range");
  }
  if (elements_[root_].parent != kInvalidElement) {
    return Status::Corruption("root has a parent");
  }
  std::vector<bool> seen(elements_.size(), false);
  std::vector<ElementId> stack{root_};
  uint64_t visited = 0;
  while (!stack.empty()) {
    const ElementId id = stack.back();
    stack.pop_back();
    if (id >= elements_.size()) {
      return Status::Corruption("child id out of range");
    }
    if (seen[id]) {
      return Status::Corruption("element visited twice (cycle or DAG)");
    }
    seen[id] = true;
    ++visited;
    for (ElementId child : elements_[id].children) {
      if (child >= elements_.size() || elements_[child].parent != id) {
        return Status::Corruption("parent link mismatch");
      }
      stack.push_back(child);
    }
  }
  if (visited != elements_.size()) {
    return Status::Corruption("unreachable elements present");
  }
  return Status::OK();
}

}  // namespace boxes::xml
