file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_xmark.dir/bench_fig8_xmark.cc.o"
  "CMakeFiles/bench_fig8_xmark.dir/bench_fig8_xmark.cc.o.d"
  "bench_fig8_xmark"
  "bench_fig8_xmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_xmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
