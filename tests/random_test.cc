#include "util/random.h"

#include <set>

#include "gtest/gtest.h"

namespace boxes {
namespace {

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(7);
  Random b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1);
  Random b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 5);
}

TEST(RandomTest, UniformWithinBounds) {
  Random rng(13);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformRange(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RandomTest, UniformCoversRange) {
  Random rng(99);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.Uniform(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RandomTest, BernoulliRoughlyCalibrated) {
  Random rng(21);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, SkewedWithinBoundsAndSkewed) {
  Random rng(77);
  uint64_t low_half = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const uint64_t v = rng.Skewed(100, 0.5);
    ASSERT_LT(v, 100u);
    if (v < 50) {
      ++low_half;
    }
  }
  // A skewed distribution favors small values well beyond 50%.
  EXPECT_GT(low_half, n * 6 / 10);
}

}  // namespace
}  // namespace boxes
