#ifndef BOXES_TESTS_MODEL_TREE_H_
#define BOXES_TESTS_MODEL_TREE_H_

#include <cstdint>
#include <map>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/common/labeling_scheme.h"
#include "util/random.h"
#include "util/status.h"

namespace boxes::testing {

/// In-memory reference model of a dynamic XML element tree whose elements
/// carry the LIDs a scheme assigned. Property tests mutate a scheme and the
/// model in lockstep and then compare the scheme's label order against the
/// model's tag order.
class ModelTree {
 public:
  struct Node {
    NewElement lids;
    int parent = -1;
    std::vector<int> children;
    bool alive = false;
  };

  bool empty() const { return alive_count_ == 0; }
  uint64_t element_count() const { return alive_count_; }
  /// Nodes ever created (valid indices for node()), alive or not.
  uint64_t total_nodes() const { return nodes_.size(); }

  /// Initializes with a root element.
  int SetRoot(NewElement lids) {
    nodes_.clear();
    nodes_.push_back(Node{lids, -1, {}, true});
    alive_count_ = 1;
    return 0;
  }

  const Node& node(int index) const { return nodes_[index]; }

  /// Inserts a new element as the previous sibling of `target`
  /// (= insert-element-before its start label).
  int InsertBeforeStart(int target, NewElement lids) {
    const int parent = nodes_[target].parent;
    const int id = NewNode(lids, parent);
    auto& siblings = nodes_[parent].children;
    for (size_t i = 0; i < siblings.size(); ++i) {
      if (siblings[i] == target) {
        siblings.insert(siblings.begin() + static_cast<ptrdiff_t>(i), id);
        return id;
      }
    }
    siblings.push_back(id);  // unreachable for consistent callers
    return id;
  }

  /// Inserts a new element as the last child of `target`
  /// (= insert-element-before its end label).
  int InsertAsLastChild(int target, NewElement lids) {
    const int id = NewNode(lids, target);
    nodes_[target].children.push_back(id);
    return id;
  }

  /// Removes one element; its children become children of its parent, in
  /// its place (the paper's delete semantics).
  void DeleteElement(int target) {
    const int parent = nodes_[target].parent;
    auto& siblings = nodes_[parent].children;
    for (size_t i = 0; i < siblings.size(); ++i) {
      if (siblings[i] != target) {
        continue;
      }
      siblings.erase(siblings.begin() + static_cast<ptrdiff_t>(i));
      const auto& orphans = nodes_[target].children;
      siblings.insert(siblings.begin() + static_cast<ptrdiff_t>(i),
                      orphans.begin(), orphans.end());
      break;
    }
    for (int child : nodes_[target].children) {
      nodes_[child].parent = parent;
    }
    nodes_[target].alive = false;
    nodes_[target].children.clear();
    --alive_count_;
  }

  /// Removes an element and its whole subtree; returns the removed LIDs.
  std::vector<NewElement> DeleteSubtree(int target) {
    std::vector<NewElement> removed;
    std::vector<int> stack{target};
    while (!stack.empty()) {
      const int id = stack.back();
      stack.pop_back();
      removed.push_back(nodes_[id].lids);
      nodes_[id].alive = false;
      --alive_count_;
      for (int child : nodes_[id].children) {
        stack.push_back(child);
      }
      nodes_[id].children.clear();
    }
    const int parent = nodes_[target].parent;
    if (parent >= 0) {
      auto& siblings = nodes_[parent].children;
      for (size_t i = 0; i < siblings.size(); ++i) {
        if (siblings[i] == target) {
          siblings.erase(siblings.begin() + static_cast<ptrdiff_t>(i));
          break;
        }
      }
    }
    return removed;
  }

  /// Grafts an externally built subtree as previous sibling of `target`'s
  /// start (mirroring InsertSubtreeBefore on a start label). The document's
  /// shape is replicated; returns the model index of the grafted root.
  int GraftBeforeStart(int target, const xml::Document& doc,
                       const std::vector<NewElement>& lids) {
    const int root = InsertBeforeStart(target, lids[doc.root()]);
    GraftChildren(root, doc, doc.root(), lids);
    return root;
  }

  /// Grafts a subtree as last child of `target` (insertion before its end
  /// label).
  int GraftAsLastChild(int target, const xml::Document& doc,
                       const std::vector<NewElement>& lids) {
    const int root = InsertAsLastChild(target, lids[doc.root()]);
    GraftChildren(root, doc, doc.root(), lids);
    return root;
  }

  /// All tag LIDs in document order.
  std::vector<Lid> TagOrder() const {
    std::vector<Lid> out;
    if (alive_count_ == 0) {
      return out;
    }
    AppendTags(0, &out);
    return out;
  }

  /// A uniformly random live element index; with `exclude_root`, never 0.
  /// Requires at least one eligible element.
  int RandomElement(Random* rng, bool exclude_root) const {
    for (;;) {
      const int id =
          static_cast<int>(rng->Uniform(nodes_.size()));
      if (nodes_[id].alive && !(exclude_root && id == 0)) {
        return id;
      }
    }
  }

  uint64_t SubtreeElementCount(int target) const {
    uint64_t count = 0;
    std::vector<int> stack{target};
    while (!stack.empty()) {
      const int id = stack.back();
      stack.pop_back();
      ++count;
      for (int child : nodes_[id].children) {
        stack.push_back(child);
      }
    }
    return count;
  }

 private:
  int NewNode(NewElement lids, int parent) {
    nodes_.push_back(Node{lids, parent, {}, true});
    ++alive_count_;
    return static_cast<int>(nodes_.size() - 1);
  }

  void GraftChildren(int model_parent, const xml::Document& doc,
                     xml::ElementId doc_parent,
                     const std::vector<NewElement>& lids) {
    for (xml::ElementId child : doc.element(doc_parent).children) {
      const int model_child = InsertAsLastChild(model_parent, lids[child]);
      GraftChildren(model_child, doc, child, lids);
    }
  }

  void AppendTags(int id, std::vector<Lid>* out) const {
    out->push_back(nodes_[id].lids.start);
    for (int child : nodes_[id].children) {
      AppendTags(child, out);
    }
    out->push_back(nodes_[id].lids.end);
  }

  std::vector<Node> nodes_;
  uint64_t alive_count_ = 0;
};

/// Linearizability-style oracle for concurrent lookups (DESIGN.md §4g).
/// The writer records, while still holding the scheme's EpochWriteLock,
/// the expected label of every probe LID after each committed write — one
/// snapshot per epoch. Reader observations (lid, label, epoch from
/// LookupShared) are then validated against that history: a correct
/// concurrent reader must observe exactly the prefix state its ticket
/// epoch names — pre-update or post-update values, never a torn mix.
///
/// Thread-safe: many readers may Check while the writer Records.
class EpochLabelOracle {
 public:
  /// Records the probe labels that define epoch `epoch`. Must happen
  /// before any reader can obtain a ticket for that epoch — i.e. under
  /// the write lock that committed it (or before readers start, for the
  /// base epoch).
  void RecordEpoch(uint64_t epoch, std::map<Lid, Label> expected) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    by_epoch_[epoch] = std::move(expected);
  }

  /// Validates one reader observation against the recorded history.
  Status CheckObservation(Lid lid, const Label& label,
                          uint64_t epoch) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    const auto epoch_it = by_epoch_.find(epoch);
    if (epoch_it == by_epoch_.end()) {
      return Status::Internal("reader observed unrecorded epoch " +
                                   std::to_string(epoch));
    }
    const auto lid_it = epoch_it->second.find(lid);
    if (lid_it == epoch_it->second.end()) {
      return Status::NotFound("lid " + std::to_string(lid) +
                              " is not in the probe set");
    }
    if (label.Compare(lid_it->second) != 0) {
      return Status::Internal(
          "torn read at epoch " + std::to_string(epoch) + ": lid " +
          std::to_string(lid) + " observed " + label.ToString() +
          ", expected " + lid_it->second.ToString());
    }
    return Status::OK();
  }

  size_t recorded_epochs() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return by_epoch_.size();
  }

 private:
  mutable std::shared_mutex mu_;
  std::map<uint64_t, std::map<Lid, Label>> by_epoch_;
};

}  // namespace boxes::testing

#endif  // BOXES_TESTS_MODEL_TREE_H_
