file(REMOVE_RECURSE
  "CMakeFiles/wbox_test.dir/wbox_test.cc.o"
  "CMakeFiles/wbox_test.dir/wbox_test.cc.o.d"
  "wbox_test"
  "wbox_test.pdb"
  "wbox_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wbox_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
