#include "replication/digest.h"

#include <vector>

#include "util/coding.h"
#include "util/crc32c.h"

namespace boxes::replication {

std::string ReplicationDigest::ToString() const {
  return "{live=" + std::to_string(live_labels) +
         " height=" + std::to_string(height) +
         " lidf_pages=" + std::to_string(lidf_pages) +
         " label_crc=" + std::to_string(label_crc) + "}";
}

StatusOr<ReplicationDigest> ComputeReplicationDigest(LabelingScheme* scheme) {
  Lidf* lidf = scheme->lidf();
  if (lidf == nullptr) {
    return Status::Unimplemented(
        "scheme '" + scheme->name() +
        "' exposes no LIDF; the replication digest needs one");
  }
  ReplicationDigest digest;
  BOXES_ASSIGN_OR_RETURN(const SchemeStats stats, scheme->GetStats());
  digest.live_labels = stats.live_labels;
  digest.height = stats.height;
  digest.lidf_pages = stats.lidf_pages;

  // Fold (lid, label components) for every live label, in LID order. The
  // CRC is chained through the running value by hashing it alongside each
  // record, so ordering matters — a transposition changes the digest.
  uint32_t crc = 0;
  std::vector<uint8_t> buf;
  const Status walked =
      lidf->ForEachLive([&](Lid lid, const uint8_t*) -> Status {
        BOXES_ASSIGN_OR_RETURN(const Label label, scheme->Lookup(lid));
        const std::vector<uint64_t>& components = label.components();
        buf.assign(20 + components.size() * 8, 0);
        EncodeFixed32(buf.data(), crc);
        EncodeFixed64(buf.data() + 4, lid);
        EncodeFixed64(buf.data() + 12,
                      static_cast<uint64_t>(components.size()));
        for (size_t i = 0; i < components.size(); ++i) {
          EncodeFixed64(buf.data() + 20 + i * 8, components[i]);
        }
        crc = Crc32c(buf.data(), buf.size());
        return Status::OK();
      });
  BOXES_RETURN_IF_ERROR(walked);
  digest.label_crc = crc;
  return digest;
}

Status CheckDigestsMatch(const ReplicationDigest& primary,
                         const ReplicationDigest& standby,
                         const std::string& what) {
  if (primary == standby) {
    return Status::OK();
  }
  return Status::Corruption("replication divergence (" + what +
                            "): primary " + primary.ToString() +
                            " != standby " + standby.ToString());
}

}  // namespace boxes::replication
