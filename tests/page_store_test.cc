#include "storage/page_store.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "storage/superblock_format.h"
#include "test_util.h"

namespace boxes {
namespace {

template <typename T>
class PageStoreTest : public ::testing::Test {};

class MemoryStoreFactory {
 public:
  PageStore* store() { return &store_; }

 private:
  MemoryPageStore store_{512};
};

class FileStoreFactory {
 public:
  FileStoreFactory()
      : store_(::testing::TempDir() + "/boxes_page_store_test.db", 512) {
    EXPECT_TRUE(store_.status().ok()) << store_.status().ToString();
  }
  PageStore* store() { return &store_; }

 private:
  FilePageStore store_;
};

using StoreFactories = ::testing::Types<MemoryStoreFactory, FileStoreFactory>;
TYPED_TEST_SUITE(PageStoreTest, StoreFactories);

TYPED_TEST(PageStoreTest, AllocateReadWrite) {
  TypeParam factory;
  PageStore* store = factory.store();
  ASSERT_OK_AND_ASSIGN(const PageId page, store->Allocate());
  std::vector<uint8_t> buf(store->page_size(), 0xab);
  ASSERT_OK(store->Write(page, buf.data()));
  std::vector<uint8_t> read(store->page_size());
  ASSERT_OK(store->Read(page, read.data()));
  EXPECT_EQ(buf, read);
}

TYPED_TEST(PageStoreTest, FreshPagesAreZeroed) {
  TypeParam factory;
  PageStore* store = factory.store();
  ASSERT_OK_AND_ASSIGN(const PageId page, store->Allocate());
  std::vector<uint8_t> read(store->page_size(), 0xff);
  ASSERT_OK(store->Read(page, read.data()));
  for (uint8_t byte : read) {
    ASSERT_EQ(byte, 0);
  }
}

TYPED_TEST(PageStoreTest, FreeAndReuse) {
  TypeParam factory;
  PageStore* store = factory.store();
  ASSERT_OK_AND_ASSIGN(const PageId a, store->Allocate());
  ASSERT_OK_AND_ASSIGN(const PageId b, store->Allocate());
  EXPECT_EQ(store->allocated_pages(), 2u);
  ASSERT_OK(store->Free(a));
  EXPECT_EQ(store->allocated_pages(), 1u);
  ASSERT_OK_AND_ASSIGN(const PageId c, store->Allocate());
  EXPECT_EQ(c, a);  // freed page ids are recycled
  EXPECT_NE(c, b);
  EXPECT_EQ(store->total_pages(), 2u);
}

TYPED_TEST(PageStoreTest, AccessToFreedPageFails) {
  TypeParam factory;
  PageStore* store = factory.store();
  ASSERT_OK_AND_ASSIGN(const PageId page, store->Allocate());
  ASSERT_OK(store->Free(page));
  std::vector<uint8_t> buf(store->page_size());
  EXPECT_FALSE(store->Read(page, buf.data()).ok());
  EXPECT_FALSE(store->Write(page, buf.data()).ok());
  EXPECT_FALSE(store->Free(page).ok());
}

TYPED_TEST(PageStoreTest, AccessToUnknownPageFails) {
  TypeParam factory;
  PageStore* store = factory.store();
  std::vector<uint8_t> buf(store->page_size());
  EXPECT_FALSE(store->Read(999, buf.data()).ok());
}

TYPED_TEST(PageStoreTest, ManyPagesKeepDistinctContent) {
  TypeParam factory;
  PageStore* store = factory.store();
  constexpr int kPages = 64;
  std::vector<PageId> pages;
  for (int i = 0; i < kPages; ++i) {
    ASSERT_OK_AND_ASSIGN(const PageId page, store->Allocate());
    std::vector<uint8_t> buf(store->page_size(),
                             static_cast<uint8_t>(i * 3 + 1));
    ASSERT_OK(store->Write(page, buf.data()));
    pages.push_back(page);
  }
  for (int i = 0; i < kPages; ++i) {
    std::vector<uint8_t> read(store->page_size());
    ASSERT_OK(store->Read(pages[i], read.data()));
    EXPECT_EQ(read[0], static_cast<uint8_t>(i * 3 + 1));
    EXPECT_EQ(read[store->page_size() - 1], static_cast<uint8_t>(i * 3 + 1));
  }
}

std::string ScratchPath(const char* name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  std::remove((path + ".journal").c_str());
  return path;
}

TEST(FilePageStoreTest, TornWriteIsCaughtByChecksum) {
  const std::string path = ScratchPath("boxes_torn.db");
  FilePageStore store(path, 512);
  ASSERT_OK(store.status());
  // Page 0 is the CRC-exempt commit record; test with a data page.
  ASSERT_OK(store.Allocate().status());
  ASSERT_OK_AND_ASSIGN(const PageId page, store.Allocate());
  std::vector<uint8_t> buf(512, 0xcd);
  ASSERT_OK(store.Write(page, buf.data()));
  // Persist only part of the new image: payload and trailer now disagree.
  std::vector<uint8_t> newer(512, 0x11);
  ASSERT_OK(store.WriteTorn(page, newer.data(), 100));
  std::vector<uint8_t> read(512);
  const Status status = store.Read(page, read.data());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find(std::to_string(page)), std::string::npos);
  EXPECT_GE(store.counters().checksum_failures, 1u);
}

TEST(FilePageStoreTest, BitRotIsCaughtByChecksum) {
  const std::string path = ScratchPath("boxes_bitrot.db");
  PageId page = kInvalidPageId;
  {
    FilePageStore store(path, 512);
    ASSERT_OK(store.status());
    ASSERT_OK(store.Allocate().status());  // page 0 is CRC-exempt
    ASSERT_OK_AND_ASSIGN(page, store.Allocate());
    std::vector<uint8_t> buf(512, 0x77);
    ASSERT_OK(store.Write(page, buf.data()));
  }
  // Flip one payload byte behind the store's back.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    const long offset =
        static_cast<long>(page) * (512 + FilePageStore::kPageTrailerSize) + 9;
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    std::fputc(0x78, f);
    std::fclose(f);
  }
  FilePageStore reopened(path, 512, FilePageStore::Mode::kOpen);
  ASSERT_OK(reopened.status());
  std::vector<uint8_t> read(512);
  EXPECT_EQ(reopened.Read(page, read.data()).code(), StatusCode::kCorruption);
}

TEST(FilePageStoreTest, ChecksumsAreCounted) {
  const std::string path = ScratchPath("boxes_counted.db");
  FilePageStore store(path, 512);
  ASSERT_OK(store.status());
  ASSERT_OK(store.Allocate().status());  // page 0 is CRC-exempt
  ASSERT_OK_AND_ASSIGN(const PageId page, store.Allocate());
  std::vector<uint8_t> buf(512, 0x42);
  const uint64_t computed_before = store.counters().checksums_computed;
  ASSERT_OK(store.Write(page, buf.data()));
  EXPECT_EQ(store.counters().checksums_computed, computed_before + 1);
  ASSERT_OK(store.Read(page, buf.data()));
  EXPECT_GE(store.counters().checksums_verified, 1u);
}

// Store-level crash rollback: a page overwritten after the last committed
// epoch is rolled back to its pre-image when the file is reopened.
TEST(FilePageStoreTest, ReopenRollsBackUncommittedOverwrites) {
  const std::string path = ScratchPath("boxes_rollback.db");
  PageId data_page = kInvalidPageId;
  {
    FilePageStore store(path, 512);
    ASSERT_OK(store.status());
    // Page 0 must carry a commit record for recovery to learn the epoch.
    ASSERT_OK_AND_ASSIGN(const PageId sb, store.Allocate());
    ASSERT_EQ(sb, 0u);
    std::vector<uint8_t> page0(512, 0);
    superblock::EncodeSlot(page0.data(), /*sequence=*/1, kInvalidPageId);
    ASSERT_OK(store.Write(0, page0.data()));
    ASSERT_OK_AND_ASSIGN(data_page, store.Allocate());
    std::vector<uint8_t> committed(512, 0xaa);
    ASSERT_OK(store.Write(data_page, committed.data()));
    ASSERT_OK(store.Sync());
    ASSERT_OK(store.CommitEpoch(1));
    // Post-checkpoint overwrite, then "crash" (no CommitEpoch).
    std::vector<uint8_t> uncommitted(512, 0xbb);
    ASSERT_OK(store.Write(data_page, uncommitted.data()));
  }
  FilePageStore reopened(path, 512, FilePageStore::Mode::kOpen);
  ASSERT_OK(reopened.status());
  EXPECT_GE(reopened.counters().journal_rollbacks, 1u);
  EXPECT_EQ(reopened.epoch(), 1u);
  std::vector<uint8_t> read(512);
  ASSERT_OK(reopened.Read(data_page, read.data()));
  EXPECT_EQ(read[0], 0xaa);  // the committed image survived the crash
}

// A torn post-checkpoint overwrite is also rolled back: the journal holds
// the intact pre-image, captured before the tear.
TEST(FilePageStoreTest, ReopenRollsBackTornOverwrite) {
  const std::string path = ScratchPath("boxes_torn_rollback.db");
  PageId data_page = kInvalidPageId;
  {
    FilePageStore store(path, 512);
    ASSERT_OK(store.status());
    ASSERT_OK_AND_ASSIGN(const PageId sb, store.Allocate());
    ASSERT_EQ(sb, 0u);
    std::vector<uint8_t> page0(512, 0);
    superblock::EncodeSlot(page0.data(), /*sequence=*/1, kInvalidPageId);
    ASSERT_OK(store.Write(0, page0.data()));
    ASSERT_OK_AND_ASSIGN(data_page, store.Allocate());
    std::vector<uint8_t> committed(512, 0xaa);
    ASSERT_OK(store.Write(data_page, committed.data()));
    ASSERT_OK(store.Sync());
    ASSERT_OK(store.CommitEpoch(1));
    std::vector<uint8_t> uncommitted(512, 0xbb);
    ASSERT_OK(store.WriteTorn(data_page, uncommitted.data(), 37));
  }
  FilePageStore reopened(path, 512, FilePageStore::Mode::kOpen);
  ASSERT_OK(reopened.status());
  std::vector<uint8_t> read(512);
  ASSERT_OK(reopened.Read(data_page, read.data()));
  EXPECT_EQ(read[0], 0xaa);
}

TEST(FaultInjectionPageStoreTest, FailsAfterBudget) {
  MemoryPageStore base(512);
  FaultInjectionPageStore store(&base);
  ASSERT_OK_AND_ASSIGN(const PageId page, store.Allocate());
  std::vector<uint8_t> buf(512, 1);
  store.FailAfter(2);
  EXPECT_TRUE(store.Write(page, buf.data()).ok());   // 1st op OK
  EXPECT_TRUE(store.Read(page, buf.data()).ok());    // 2nd op OK
  EXPECT_EQ(store.Write(page, buf.data()).code(), StatusCode::kIoError);
  EXPECT_EQ(store.Read(page, buf.data()).code(), StatusCode::kIoError);
  store.Heal();
  EXPECT_TRUE(store.Read(page, buf.data()).ok());
}

TEST(FaultInjectionPageStoreTest, AllocateAndFreeAreCounted) {
  MemoryPageStore base(512);
  FaultInjectionPageStore store(&base);
  ASSERT_OK_AND_ASSIGN(const PageId keep, store.Allocate());
  EXPECT_EQ(store.ops_seen(), 1u);
  store.FailAfter(0);
  EXPECT_EQ(store.Allocate().status().code(), StatusCode::kIoError);
  EXPECT_EQ(store.Free(keep).code(), StatusCode::kIoError);
  EXPECT_EQ(store.faults_injected(), 2u);
  EXPECT_EQ(base.allocated_pages(), 1u);  // nothing reached the base store
  store.Heal();
  ASSERT_OK(store.Free(keep));
}

TEST(FaultInjectionPageStoreTest, TransientProbabilisticFaults) {
  MemoryPageStore base(512);
  FaultInjectionPageStore store(&base);
  ASSERT_OK_AND_ASSIGN(const PageId page, store.Allocate());
  std::vector<uint8_t> buf(512, 3);
  store.SetSeed(12345);
  store.SetFailProbability(0.3, /*transient=*/true);
  int failures = 0;
  int successes = 0;
  for (int i = 0; i < 200; ++i) {
    if (store.Write(page, buf.data()).ok()) {
      ++successes;
    } else {
      ++failures;
    }
  }
  // Transient faults interleave: both outcomes occur, and successes resume
  // after failures without Heal().
  EXPECT_GT(failures, 20);
  EXPECT_GT(successes, 80);
  EXPECT_EQ(store.faults_injected(), static_cast<uint64_t>(failures));
}

TEST(FaultInjectionPageStoreTest, PermanentFaultLatchesUntilHeal) {
  MemoryPageStore base(512);
  FaultInjectionPageStore store(&base);
  ASSERT_OK_AND_ASSIGN(const PageId page, store.Allocate());
  std::vector<uint8_t> buf(512, 4);
  store.SetSeed(99);
  store.SetFailProbability(0.2, /*transient=*/false);
  // Drive until the first fault; after it, everything fails.
  int i = 0;
  while (store.Write(page, buf.data()).ok()) {
    ASSERT_LT(++i, 1000);
  }
  EXPECT_EQ(store.Read(page, buf.data()).code(), StatusCode::kIoError);
  EXPECT_EQ(store.Write(page, buf.data()).code(), StatusCode::kIoError);
  EXPECT_EQ(store.Allocate().status().code(), StatusCode::kIoError);
  store.Heal();
  store.SetFailProbability(0.0);
  EXPECT_TRUE(store.Read(page, buf.data()).ok());
}

TEST(FaultInjectionPageStoreTest, CrashPointFreezesTheImage) {
  MemoryPageStore base(512);
  FaultInjectionPageStore store(&base);
  ASSERT_OK_AND_ASSIGN(const PageId a, store.Allocate());
  ASSERT_OK_AND_ASSIGN(const PageId b, store.Allocate());
  std::vector<uint8_t> ones(512, 1);
  std::vector<uint8_t> twos(512, 2);
  store.CrashAfterWrites(2);
  ASSERT_OK(store.Write(a, ones.data()));
  ASSERT_OK(store.Write(b, ones.data()));
  EXPECT_FALSE(store.crashed());
  EXPECT_EQ(store.Write(a, twos.data()).code(), StatusCode::kIoError);
  EXPECT_TRUE(store.crashed());
  // Every later operation fails: the image below is frozen.
  EXPECT_EQ(store.Read(a, ones.data()).code(), StatusCode::kIoError);
  EXPECT_EQ(store.Allocate().status().code(), StatusCode::kIoError);
  EXPECT_EQ(store.Sync().code(), StatusCode::kIoError);
  // The base store still holds the pre-crash content.
  std::vector<uint8_t> read(512);
  ASSERT_OK(base.Read(a, read.data()));
  EXPECT_EQ(read[0], 1);
  store.Heal();
  EXPECT_FALSE(store.crashed());
  ASSERT_OK(store.Read(a, read.data()));
}

TEST(FaultInjectionPageStoreTest, TornWriteOnFaultReachesTheBase) {
  const std::string path = ScratchPath("boxes_fault_torn.db");
  FilePageStore base(path, 512);
  ASSERT_OK(base.status());
  FaultInjectionPageStore store(&base);
  ASSERT_OK(store.Allocate().status());  // page 0 is CRC-exempt
  ASSERT_OK_AND_ASSIGN(const PageId page, store.Allocate());
  std::vector<uint8_t> good(512, 0x10);
  ASSERT_OK(store.Write(page, good.data()));
  store.SetSeed(7);
  store.SetTornWrites(true);
  store.CrashAfterWrites(0);
  std::vector<uint8_t> bad(512, 0x20);
  EXPECT_EQ(store.Write(page, bad.data()).code(), StatusCode::kIoError);
  store.Heal();
  // The torn frame is on the device and the checksum catches it.
  std::vector<uint8_t> read(512);
  EXPECT_EQ(base.Read(page, read.data()).code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace boxes
