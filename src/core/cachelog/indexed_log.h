#ifndef BOXES_CORE_CACHELOG_INDEXED_LOG_H_
#define BOXES_CORE_CACHELOG_INDEXED_LOG_H_

#include <cstdint>
#include <vector>

#include "core/cachelog/mod_log.h"

namespace boxes {

/// The paper's §8 future-work item realized: "an efficient data structure
/// for storing the log."
///
/// A plain k-entry FIFO makes every replay scan all k entries even when
/// none affect the cached label. Here the value-affecting entries
/// (shifts/invalidations) are additionally kept in an interval-stabbing
/// index: an array sorted by range start with a segment tree of subtree
/// max range ends, rebuilt lazily every kTailLimit appends (amortized
/// O(k / kTailLimit) per append). A replay step asks for the stabbing set
/// of the current label — small, because label ranges from leaf-local
/// updates are narrow — and picks the earliest unapplied entry, giving
/// O(log k + stabbers + kTailLimit) per applied entry instead of O(k) per
/// replay.
///
/// Replay must track the label as it evolves (an earlier shift can move
/// the label into or out of a later entry's range), which is why the index
/// is consulted once per applied entry rather than once per replay.
///
/// Ordinal entries match half-lines rather than narrow ranges (poor
/// stabbing selectivity), so ordinal replay walks a timestamp-ordered ring
/// segment tree with min-threshold pruning instead.
///
/// Observationally identical to ModificationLog; only CPU cost differs.
class IndexedModificationLog : public ReplayLog {
 public:
  /// Appends between index rebuilds; bounds the linear "tail" scan.
  static constexpr size_t kTailLimit = 64;

  /// `capacity` is the FIFO window size k (0 = basic caching).
  explicit IndexedModificationLog(size_t capacity);

  size_t capacity() const override { return capacity_; }
  uint64_t now() const override { return clock_; }
  void Append(LogEntry entry) override;
  ReplayResult Replay(uint64_t last_cached, Label* label) const override;
  ReplayResult ReplayOrdinal(uint64_t last_cached,
                             uint64_t* ordinal) const override;

 private:
  /// One value-kind entry in the stabbing index.
  struct ValueEntry {
    Label lo;
    Label hi;
    uint64_t timestamp = 0;
    bool invalidate = false;
  };

  /// Ordinal aggregates for the timestamp-ordered ring tree.
  struct OrdinalAggregate {
    bool has_ordinal = false;
    uint64_t min_from = 0;
  };

  bool CoversSince(uint64_t last_cached) const {
    const uint64_t present =
        clock_ < capacity_ ? clock_ : static_cast<uint64_t>(capacity_);
    return last_cached + present >= clock_;
  }

  /// Oldest timestamp still inside the FIFO window.
  uint64_t WindowStart() const {
    return clock_ > capacity_ ? clock_ - capacity_ + 1 : 1;
  }

  /// Delta of the window entry with the given timestamp (ring lookup).
  int64_t EntryDelta(uint64_t timestamp) const {
    return slots_[timestamp % ring_size_].delta;
  }

  /// Rebuilds the sorted stabbing index from the current window and
  /// empties the tail.
  void RebuildValueIndex();

  /// Recomputes `max_hi_` for the implicit segment-tree node covering the
  /// sorted range [lo, hi).
  void ComputeMaxHi(size_t node, size_t lo, size_t hi);

  /// Earliest entry with timestamp in (after_ts, clock_] whose range
  /// contains `label`, searching index + tail; nullptr if none.
  const ValueEntry* FindNextValue(uint64_t after_ts,
                                  const Label& label) const;

  /// Stabbing-descent over sorted_[lo, hi): updates *best with the
  /// earliest matching entry after `after_ts`.
  void Stab(size_t node, size_t lo, size_t hi, uint64_t after_ts,
            const Label& label, const ValueEntry** best) const;

  // Ordinal ring-tree helpers.
  void UpdateOrdinalPath(size_t slot);
  uint64_t FindNextOrdinal(uint64_t after_ts, uint64_t ordinal) const;
  uint64_t DescendOrdinal(size_t node, size_t node_lo, size_t node_hi,
                          size_t lo, size_t hi, uint64_t after_ts,
                          uint64_t ordinal) const;

  const size_t capacity_;
  const size_t ring_size_;  // power of two >= capacity (1 if capacity 0)
  uint64_t clock_ = 0;
  std::vector<LogEntry> slots_;  // slot = timestamp % ring_size_

  // Value-entry stabbing index + unindexed tail.
  std::vector<ValueEntry> sorted_;   // by lo
  std::vector<Label> max_hi_;        // segment tree over sorted_
  std::vector<ValueEntry> tail_;     // appended since last rebuild
  uint64_t appends_since_rebuild_ = 0;

  // Ordinal ring segment tree.
  std::vector<OrdinalAggregate> ordinal_nodes_;  // 2 * ring_size_
};

}  // namespace boxes

#endif  // BOXES_CORE_CACHELOG_INDEXED_LOG_H_
