# Empty dependencies file for node_layout_test.
# This may be replaced when dependencies are built.
