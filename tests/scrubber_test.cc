// Online integrity scrubber (DESIGN.md §4f): incremental page walking,
// quarantine lifecycle, structural checks, and detection of real on-disk
// damage through FilePageStore's CRC frames.

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "storage/scrubber.h"
#include "test_util.h"

namespace boxes {
namespace {

/// Allocates `n` pages filled with a marker byte and returns their ids.
std::vector<PageId> AllocatePages(PageStore* store, int n) {
  std::vector<PageId> ids;
  std::vector<uint8_t> buf(store->page_size(), 0x42);
  for (int i = 0; i < n; ++i) {
    StatusOr<PageId> id = store->Allocate();
    EXPECT_OK(id.status());
    EXPECT_OK(store->Write(*id, buf.data()));
    ids.push_back(*id);
  }
  return ids;
}

TEST(ScrubberTest, IncrementalStepsCoverEveryAllocatedPage) {
  MemoryPageStore store(256);
  AllocatePages(&store, 10);
  ScrubberOptions options;
  options.pages_per_step = 3;
  Scrubber scrubber(&store, options);

  // 10 pages at 3 per step: three full steps and a remainder step that
  // closes the pass.
  while (scrubber.counters().passes_completed == 0) {
    ASSERT_OK(scrubber.Step());
    ASSERT_LE(scrubber.counters().steps, 10u) << "pass never completed";
  }
  EXPECT_EQ(scrubber.counters().steps, 4u);
  EXPECT_EQ(scrubber.counters().pages_scanned, 10u);
  EXPECT_EQ(scrubber.counters().corrupt_pages, 0u);
  EXPECT_TRUE(scrubber.quarantined().empty());
}

TEST(ScrubberTest, SkipsFreePagesAndWrapsAround) {
  MemoryPageStore store(256);
  const std::vector<PageId> ids = AllocatePages(&store, 8);
  ASSERT_OK(store.Free(ids[2]));
  ASSERT_OK(store.Free(ids[5]));
  Scrubber scrubber(&store);

  ASSERT_OK(scrubber.ScrubPass());
  EXPECT_EQ(scrubber.counters().pages_scanned, 6u);
  // The next pass re-snapshots and scans again from the start.
  ASSERT_OK(scrubber.ScrubPass());
  EXPECT_EQ(scrubber.counters().pages_scanned, 12u);
  EXPECT_EQ(scrubber.counters().passes_completed, 2u);
}

TEST(ScrubberTest, QuarantinesCorruptPagesAndRecoversHealedOnes) {
  MemoryPageStore base(256);
  FaultInjectionPageStore faulty(&base);
  const std::vector<PageId> ids = AllocatePages(&faulty, 6);
  MetricsRegistry metrics;
  Scrubber scrubber(&faulty);
  scrubber.SetMetrics(&metrics);

  faulty.PoisonPage(ids[1]);
  faulty.PoisonPage(ids[4]);
  ASSERT_OK(scrubber.ScrubPass());
  EXPECT_EQ(scrubber.quarantined(), (std::set<PageId>{ids[1], ids[4]}));
  EXPECT_TRUE(scrubber.IsQuarantined(ids[1]));
  EXPECT_FALSE(scrubber.IsQuarantined(ids[0]));
  EXPECT_EQ(scrubber.counters().corrupt_pages, 2u);
  EXPECT_EQ(metrics.CounterValue("scrub.corrupt_pages"), 2u);

  // Re-scrubbing without healing does not double-count.
  ASSERT_OK(scrubber.ScrubPass());
  EXPECT_EQ(scrubber.counters().corrupt_pages, 2u);

  faulty.HealPage(ids[1]);
  ASSERT_OK(scrubber.ScrubPass());
  EXPECT_EQ(scrubber.quarantined(), std::set<PageId>{ids[4]});
  EXPECT_EQ(scrubber.counters().pages_recovered, 1u);
  EXPECT_EQ(metrics.CounterValue("scrub.pages_recovered"), 1u);
}

TEST(ScrubberTest, TransientReadErrorsAreNotQuarantined) {
  MemoryPageStore base(256);
  FaultInjectionPageStore faulty(&base);
  AllocatePages(&faulty, 5);
  Scrubber scrubber(&faulty);

  faulty.SetSeed(0x5c2b);
  faulty.SetFailProbability(1.0, /*transient=*/true);
  ASSERT_OK(scrubber.ScrubPass());
  EXPECT_EQ(scrubber.counters().read_errors, 5u);
  EXPECT_TRUE(scrubber.quarantined().empty());

  // Once the glitch clears, the next pass verifies everything.
  faulty.SetFailProbability(0.0);
  ASSERT_OK(scrubber.ScrubPass());
  EXPECT_EQ(scrubber.counters().pages_scanned, 10u);
  EXPECT_TRUE(scrubber.quarantined().empty());
}

TEST(ScrubberTest, StructuralChecksRunPerPassAndRecordFailures) {
  MemoryPageStore store(256);
  AllocatePages(&store, 4);
  Scrubber scrubber(&store);
  int healthy_runs = 0;
  scrubber.AddStructuralCheck("healthy", [&healthy_runs] {
    ++healthy_runs;
    return Status::OK();
  });
  bool broken = false;
  scrubber.AddStructuralCheck("breakable", [&broken] {
    return broken ? Status::Corruption("sibling chain broken")
                  : Status::OK();
  });

  ASSERT_OK(scrubber.ScrubPass());
  EXPECT_EQ(healthy_runs, 1);
  EXPECT_EQ(scrubber.counters().structural_checks, 2u);
  EXPECT_EQ(scrubber.counters().structural_failures, 0u);
  EXPECT_OK(scrubber.last_structural_error());

  broken = true;
  // Structural failures are recorded, not returned: scrubbing continues.
  ASSERT_OK(scrubber.ScrubPass());
  EXPECT_EQ(scrubber.counters().structural_failures, 1u);
  EXPECT_EQ(scrubber.last_structural_error().code(),
            StatusCode::kCorruption);
  EXPECT_NE(scrubber.last_structural_error().message().find("breakable"),
            std::string::npos);
}

TEST(ScrubberTest, PassProgressAdvancesWithinAPass) {
  MemoryPageStore store(256);
  AllocatePages(&store, 8);
  ScrubberOptions options;
  options.pages_per_step = 2;
  Scrubber scrubber(&store, options);

  EXPECT_EQ(scrubber.pass_progress(), 0.0);
  ASSERT_OK(scrubber.Step());
  const double early = scrubber.pass_progress();
  EXPECT_GT(early, 0.0);
  ASSERT_OK(scrubber.Step());
  EXPECT_GT(scrubber.pass_progress(), early);
}

TEST(ScrubberTest, DetectsRealOnDiskCorruptionThroughCrcFrames) {
  // Flip one payload byte directly in the backing file: the scrubber must
  // find the page via FilePageStore's CRC verification, and quarantine
  // exactly that page.
  const std::string path = ::testing::TempDir() + "/boxes_scrub.db";
  FilePageStore store(path, 256, FilePageStore::Mode::kTruncate);
  ASSERT_OK(store.status());
  const std::vector<PageId> ids = AllocatePages(&store, 4);
  ASSERT_OK(store.Sync());

  const PageId victim = ids[2];
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    const long offset = static_cast<long>(victim) *
                        static_cast<long>(256 + FilePageStore::kPageTrailerSize);
    ASSERT_EQ(std::fseek(f, offset + 17, SEEK_SET), 0);
    ASSERT_EQ(std::fputc(0x99, f), 0x99);  // payload was 0x42 everywhere
    std::fclose(f);
  }

  Scrubber scrubber(&store);
  ASSERT_OK(scrubber.ScrubPass());
  EXPECT_EQ(scrubber.quarantined(), std::set<PageId>{victim});
  EXPECT_EQ(scrubber.counters().corrupt_pages, 1u);

  // Rewriting the page heals it; the next pass recovers it.
  std::vector<uint8_t> buf(256, 0x42);
  ASSERT_OK(store.Write(victim, buf.data()));
  ASSERT_OK(scrubber.ScrubPass());
  EXPECT_TRUE(scrubber.quarantined().empty());
  EXPECT_EQ(scrubber.counters().pages_recovered, 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace boxes
