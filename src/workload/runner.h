#ifndef BOXES_WORKLOAD_RUNNER_H_
#define BOXES_WORKLOAD_RUNNER_H_

#include <functional>

#include "storage/page_cache.h"
#include "util/histogram.h"
#include "util/status.h"

namespace boxes::workload {

/// Collected measurements of a workload run: one histogram sample per
/// logical operation (the paper's per-operation block I/O count).
struct RunStats {
  Histogram per_op_cost;
  IoStats totals;

  double MeanCost() const { return per_op_cost.Mean(); }
};

/// Executes `op` bracketed as one logical operation on `cache`, recording
/// its block I/O cost (reads at first touch + dirty writes at completion)
/// into `stats`.
Status MeasureOp(PageCache* cache, const std::function<Status()>& op,
                 RunStats* stats);

/// Executes `op` as one (unmeasured) logical operation, e.g. the bulk load
/// that precedes a measured phase.
Status UnmeasuredOp(PageCache* cache, const std::function<Status()>& op);

}  // namespace boxes::workload

#endif  // BOXES_WORKLOAD_RUNNER_H_
