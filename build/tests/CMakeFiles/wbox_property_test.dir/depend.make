# Empty dependencies file for wbox_property_test.
# This may be replaced when dependencies are built.
