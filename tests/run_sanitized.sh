#!/bin/sh
# Builds the sanitize preset (ASan + UBSan, abort on first report) and runs
# the full test suite under it. Usage: tests/run_sanitized.sh [ctest args].
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

cmake --preset sanitize
cmake --build --preset sanitize -j "$(nproc)"
ctest --preset sanitize -j "$(nproc)" "$@"

# The crash-point recovery sweep (label: crash-sweep) is part of the suite
# above; run it again serially so torn-write recovery paths execute under
# the sanitizers without interleaved test processes sharing /tmp images.
ctest --preset crash-sweep-sanitize "$@"
