#include "core/common/label.h"

#include "gtest/gtest.h"
#include "util/biguint.h"

namespace boxes {
namespace {

TEST(LabelTest, ScalarOrdering) {
  const Label a = Label::FromScalar(10);
  const Label b = Label::FromScalar(20);
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b > a);
  EXPECT_TRUE(a == Label::FromScalar(10));
  EXPECT_EQ(a.scalar(), 10u);
}

TEST(LabelTest, ComponentOrderingIsLexicographic) {
  const Label a = Label::FromComponents({1, 3, 2});
  const Label b = Label::FromComponents({1, 3, 5});
  const Label c = Label::FromComponents({2, 0, 0});
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b < c);
  EXPECT_TRUE(a < c);
}

TEST(LabelTest, PrefixOrdersBeforeExtension) {
  const Label prefix = Label::FromComponents({1, 3});
  const Label longer = Label::FromComponents({1, 3, 0});
  EXPECT_TRUE(prefix < longer);
  EXPECT_EQ(prefix.Compare(prefix), 0);
}

TEST(LabelTest, BigUintRoundTripPreservesOrder) {
  const BigUint small = BigUint(7).ShiftLeft(100);
  const BigUint large = BigUint(8).ShiftLeft(100);
  const Label a = Label::FromBigUint(small, 3);
  const Label b = Label::FromBigUint(large, 3);
  EXPECT_TRUE(a < b);
  EXPECT_EQ(a.ToBigUint(), small);
  EXPECT_EQ(b.ToBigUint(), large);
}

TEST(LabelTest, BitLengthUsesFixedWidthComponents) {
  EXPECT_EQ(Label::FromScalar(0).BitLength(), 1u);
  EXPECT_EQ(Label::FromScalar(255).BitLength(), 8u);
  // 3 components, max 5 -> 3 bits each.
  EXPECT_EQ(Label::FromComponents({1, 5, 0}).BitLength(), 9u);
}

TEST(LabelTest, ToString) {
  EXPECT_EQ(Label::FromScalar(42).ToString(), "42");
  EXPECT_EQ(Label::FromComponents({1, 2, 3}).ToString(), "(1,2,3)");
}

TEST(LabelTest, AncestorPredicate) {
  const ElementLabels outer{Label::FromScalar(0), Label::FromScalar(9)};
  const ElementLabels inner{Label::FromScalar(2), Label::FromScalar(5)};
  const ElementLabels sibling{Label::FromScalar(6), Label::FromScalar(7)};
  EXPECT_TRUE(IsAncestor(outer, inner));
  EXPECT_FALSE(IsAncestor(inner, outer));
  EXPECT_FALSE(IsAncestor(inner, sibling));
  EXPECT_TRUE(PrecedesInDocumentOrder(inner, sibling));
  EXPECT_FALSE(PrecedesInDocumentOrder(sibling, inner));
}

}  // namespace
}  // namespace boxes
