// A simulated editing session over a live document: single-element edits,
// whole-fragment (subtree) insertion and deletion, periodic integrity
// audits, and an I/O report per phase — the "dynamic XML" scenario of the
// paper's introduction, driven through W-BOX-O.
//
//   ./document_editor [--elements=5000] [--edits=2000] [--seed=9]

#include <cstdio>
#include <vector>

#include "core/common/label.h"
#include "core/wbox/wbox.h"
#include "storage/page_cache.h"
#include "storage/page_store.h"
#include "util/flags.h"
#include "util/random.h"
#include "workload/runner.h"
#include "xml/generators.h"

namespace {

void DieOnError(const boxes::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

/// Live elements of the evolving document (a flat registry; the tree
/// structure itself lives only in the labels).
struct Registry {
  std::vector<boxes::NewElement> elements;

  void Add(const boxes::NewElement& e) { elements.push_back(e); }
  const boxes::NewElement& Random(boxes::Random* rng) const {
    return elements[rng->Uniform(elements.size())];
  }
};

void Report(const char* phase, const boxes::IoStats& before,
            const boxes::IoStats& after, uint64_t ops) {
  const boxes::IoStats delta = after.Delta(before);
  std::printf("%-28s %8llu ops %10llu I/Os (%.2f per op)\n", phase,
              static_cast<unsigned long long>(ops),
              static_cast<unsigned long long>(delta.total()),
              ops == 0 ? 0.0
                       : static_cast<double>(delta.total()) /
                             static_cast<double>(ops));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace boxes;  // NOLINT: example brevity

  FlagParser flags;
  int64_t* elements = flags.AddInt64("elements", 5000, "initial elements");
  int64_t* edits = flags.AddInt64("edits", 2000, "single-element edits");
  int64_t* seed = flags.AddInt64("seed", 9, "random seed");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  MemoryPageStore store;
  PageCache cache(&store);
  WBoxOptions options;
  options.pair_mode = true;  // W-BOX-O: element lookups in 2 I/Os
  WBox wbox(&cache, options);
  Random rng(static_cast<uint64_t>(*seed));

  // Phase 1: initial load.
  IoStats mark = cache.stats();
  const xml::Document doc = xml::MakeRandomDocument(
      static_cast<uint64_t>(*elements), 8, static_cast<uint64_t>(*seed));
  std::vector<NewElement> lids;
  DieOnError(workload::UnmeasuredOp(
                 &cache, [&] { return wbox.BulkLoad(doc, &lids); }),
             "bulk load");
  Registry registry;
  for (const NewElement& e : lids) {
    registry.Add(e);
  }
  Report("bulk load", mark, cache.stats(), doc.element_count());

  // Phase 2: interactive single-element edits (inserts + deletes).
  mark = cache.stats();
  std::vector<NewElement> inserted;
  for (int64_t i = 0; i < *edits; ++i) {
    IoScope scope(&cache);
    if (rng.Bernoulli(0.7) || inserted.empty()) {
      const NewElement& anchor = registry.Random(&rng);
      StatusOr<NewElement> fresh = wbox.InsertElementBefore(
          rng.Bernoulli(0.5) ? anchor.end : anchor.start);
      DieOnError(fresh.status(), "insert");
      inserted.push_back(*fresh);
    } else {
      const NewElement victim = inserted.back();
      inserted.pop_back();
      DieOnError(wbox.Delete(victim.start), "delete start");
      DieOnError(wbox.Delete(victim.end), "delete end");
    }
  }
  for (const NewElement& e : inserted) {
    registry.Add(e);
  }
  Report("single-element edits", mark, cache.stats(),
         static_cast<uint64_t>(*edits));
  DieOnError(wbox.CheckInvariants(), "audit after edits");

  // Phase 3: paste a whole fragment (bulk subtree insertion).
  mark = cache.stats();
  const xml::Document fragment =
      xml::MakeBalancedDocument(static_cast<uint64_t>(*elements) / 4, 5);
  std::vector<NewElement> fragment_lids;
  const NewElement& paste_anchor = registry.Random(&rng);
  {
    IoScope scope(&cache);
    DieOnError(wbox.InsertSubtreeBefore(paste_anchor.end, fragment,
                                        &fragment_lids),
               "paste fragment");
  }
  Report("paste fragment (bulk)", mark, cache.stats(), 1);

  // Phase 4: cut the fragment back out (bulk subtree deletion).
  mark = cache.stats();
  {
    IoScope scope(&cache);
    DieOnError(wbox.DeleteSubtree(fragment_lids[fragment.root()].start,
                                  fragment_lids[fragment.root()].end),
               "cut fragment");
  }
  Report("cut fragment (bulk)", mark, cache.stats(), 1);
  DieOnError(wbox.CheckInvariants(), "audit after fragment ops");

  // Phase 5: verify document order is still coherent end to end.
  mark = cache.stats();
  uint64_t checked = 0;
  for (size_t i = 0; i + 1 < registry.elements.size(); i += 37) {
    const NewElement& e = registry.elements[i];
    IoScope scope(&cache);
    StatusOr<ElementLabels> labels = wbox.LookupElement(e.start, e.end);
    DieOnError(labels.status(), "lookup");
    if (!(labels->start < labels->end)) {
      std::fprintf(stderr, "label order violated!\n");
      return 1;
    }
    ++checked;
  }
  Report("order spot checks", mark, cache.stats(), checked);

  std::printf("\nfinal: %llu live labels, height %u, %llu rebuilds — OK\n",
              static_cast<unsigned long long>(wbox.live_labels()),
              wbox.height(),
              static_cast<unsigned long long>(wbox.rebuild_count()));
  return 0;
}
