#ifndef BOXES_CORE_CACHELOG_CACHING_STORE_H_
#define BOXES_CORE_CACHELOG_CACHING_STORE_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include <memory>

#include "core/cachelog/indexed_log.h"
#include "core/cachelog/mod_log.h"
#include "core/common/labeling_scheme.h"
#include "util/metrics.h"
#include "util/status.h"

namespace boxes {

/// An augmented label reference (paper §6): the immutable LID plus a cached
/// label value and the last-cached timestamp. These are what a query index
/// would store instead of raw label values.
struct CachedLabelRef {
  Lid lid = kInvalidLid;
  Label cached;
  uint64_t last_cached = 0;
  bool has_value = false;
};

/// Like CachedLabelRef but caching the ordinal label.
struct CachedOrdinalRef {
  Lid lid = kInvalidLid;
  uint64_t cached = 0;
  uint64_t last_cached = 0;
  bool has_value = false;
};

/// Result of a resilient lookup (DESIGN.md §4f). `possibly_stale` is false
/// for exact answers (fresh cache hit, replay-repaired, or full lookup)
/// and true when the scheme could not be reached and the value was served
/// from a cache entry the mod log no longer covers — correct as of
/// `ref->last_cached`, but unverifiable right now.
struct ResilientLabel {
  Label label;
  bool possibly_stale = false;
};

/// Ordinal-label variant of ResilientLabel.
struct ResilientOrdinal {
  uint64_t ordinal = 0;
  bool possibly_stale = false;
};

/// Eliminates the indirection cost of dynamic labels for read-heavy
/// workloads (paper §6). Attaches to a LabelingScheme as its
/// UpdateListener, logs every modification's effect on labels, and serves
/// lookups from cached references: a fresh cached value is returned with
/// ZERO I/O; a slightly stale one is repaired by replaying the logged
/// effects; only genuinely stale or invalidated references pay the
/// scheme's full lookup cost.
///
/// Concurrency: Lookup* may run from many reader threads at once under the
/// scheme's EpochGuard read side, provided each thread operates on its own
/// references (a CachedLabelRef is caller-owned mutable state). The
/// UpdateListener callbacks mutate the log and belong to the writer side.
class CachingLabelStore : public UpdateListener {
 public:
  /// Which log data structure backs replay: the paper's plain FIFO (O(k)
  /// scans) or the indexed store of its §8 future work (O(log k) per
  /// relevant entry). Results are identical; only CPU cost differs.
  enum class LogImpl { kLinear, kIndexed };

  /// `log_capacity` = k, the number of modifications kept for replay;
  /// 0 = the basic single-timestamp caching approach.
  CachingLabelStore(LabelingScheme* scheme, size_t log_capacity,
                    LogImpl impl = LogImpl::kLinear);
  ~CachingLabelStore() override;

  CachingLabelStore(const CachingLabelStore&) = delete;
  CachingLabelStore& operator=(const CachingLabelStore&) = delete;

  LabelingScheme* scheme() const { return scheme_; }
  const ReplayLog& log() const { return *log_; }

  /// Creates a reference for a LID (unfilled cache; first Lookup pays).
  CachedLabelRef MakeRef(Lid lid) const;

  /// Returns the label, serving from / refreshing the reference's cache.
  StatusOr<Label> Lookup(CachedLabelRef* ref);

  /// Ordinal-label variant; requires the scheme to support ordinals.
  StatusOr<uint64_t> OrdinalLookup(CachedOrdinalRef* ref);

  /// Like Lookup, but with the §4f graceful-degradation contract: when the
  /// full lookup fails because the data is unavailable (retry budget
  /// exhausted, dead device, corrupt/quarantined page — see
  /// IsDataUnavailableCode) and the reference still holds a cached value,
  /// that value is returned with `possibly_stale = true` instead of the
  /// error. Exact paths (fresh hit / replay repair / successful lookup)
  /// behave identically to Lookup and report `possibly_stale = false`.
  /// Errors still propagate when there is nothing cached to fall back on,
  /// or for logical error classes. A degraded serve leaves the reference
  /// untouched, so a later lookup retries the scheme.
  StatusOr<ResilientLabel> LookupResilient(CachedLabelRef* ref);

  /// Ordinal-label variant of LookupResilient.
  StatusOr<ResilientOrdinal> OrdinalLookupResilient(CachedOrdinalRef* ref);

  // Statistics: how lookups were served. Atomic so concurrent reader
  // threads (each with its OWN references — refs themselves are not
  // shared) count exactly.
  uint64_t served_fresh() const {
    return served_fresh_.load(std::memory_order_relaxed);
  }
  uint64_t served_replayed() const {
    return served_replayed_.load(std::memory_order_relaxed);
  }
  uint64_t served_full() const {
    return served_full_.load(std::memory_order_relaxed);
  }
  /// Lookups served degraded: the scheme was unreachable and the cached,
  /// possibly stale value was returned instead of an error.
  uint64_t served_degraded() const {
    return served_degraded_.load(std::memory_order_relaxed);
  }
  /// Resilient lookups that failed outright (unavailable AND no cached
  /// value to fall back on).
  uint64_t degraded_misses() const {
    return degraded_misses_.load(std::memory_order_relaxed);
  }
  void ResetServeStats();

  // UpdateListener:
  void OnRangeShift(const Label& lo, const Label& hi, int64_t delta,
                    bool last_component_only) override;
  void OnInvalidateRange(const Label& lo, const Label& hi) override;
  void OnOrdinalShift(uint64_t from, int64_t delta) override;

 private:
  /// Pre-resolved handles into the scheme's attached MetricsRegistry, so
  /// the per-lookup hot path increments atomics directly instead of
  /// re-resolving "cachelog.*" names through the registry's locked map on
  /// every serve. Re-resolved lazily whenever the scheme's registry pointer
  /// changes (schemes may have metrics attached after the store is built).
  struct ServeMetricHandles {
    MetricsRegistry::Counter* served_fresh = nullptr;
    MetricsRegistry::Counter* served_replayed = nullptr;
    MetricsRegistry::Counter* served_full = nullptr;
    MetricsRegistry::Counter* served_degraded = nullptr;
    MetricsRegistry::Counter* degraded_misses = nullptr;
    Histogram* lookup_us = nullptr;
    Histogram* ordinal_lookup_us = nullptr;
  };

  /// Handles for `metrics`, resolving them on first sight of a new
  /// registry; nullptr when no registry is attached. Safe from concurrent
  /// readers: after the initial resolution the fast path is one acquire
  /// load. (Swapping registries while reader traffic is running is not
  /// supported — the same rule the scheme's own metrics pointer has.)
  const ServeMetricHandles* Handles(MetricsRegistry* metrics);

  /// Shared serve path of Lookup/LookupResilient; `stale_out` non-null
  /// enables the degraded fallback and receives the staleness marker.
  StatusOr<Label> LookupImpl(CachedLabelRef* ref, bool* stale_out);
  StatusOr<uint64_t> OrdinalLookupImpl(CachedOrdinalRef* ref,
                                       bool* stale_out);

  LabelingScheme* scheme_;  // not owned
  std::unique_ptr<ReplayLog> log_;
  std::mutex handles_mu_;
  std::atomic<MetricsRegistry*> handles_registry_{nullptr};
  ServeMetricHandles handles_;
  std::atomic<uint64_t> served_fresh_{0};
  std::atomic<uint64_t> served_replayed_{0};
  std::atomic<uint64_t> served_full_{0};
  std::atomic<uint64_t> served_degraded_{0};
  std::atomic<uint64_t> degraded_misses_{0};
};

}  // namespace boxes

#endif  // BOXES_CORE_CACHELOG_CACHING_STORE_H_
