file(REMOVE_RECURSE
  "CMakeFiles/bench_label_bits.dir/bench_label_bits.cc.o"
  "CMakeFiles/bench_label_bits.dir/bench_label_bits.cc.o.d"
  "bench_label_bits"
  "bench_label_bits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_label_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
