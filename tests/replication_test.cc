// Tests of WAL-shipping hot-standby replication (DESIGN.md §4k):
//
//   * ship frame codec: any torn/bit-flipped frame is rejected whole;
//   * FaultyLink: seeded, deterministic drops/duplicates/reorders/tears,
//     Unavailable only when the link is down;
//   * steady state: every acked primary flush applies on the standby and
//     the replication digests match, label for label;
//   * reliability: duplicates are idempotent, reorders are buffered, and
//     a dropped frame is detected as a gap and healed by ReShipFrom out of
//     the primary's own on-device log;
//   * bootstrap: a standby seeded from an online-backup byte copy catches
//     up from its superblock WAL mark to digest equality;
//   * standby restart: the persisted apply horizon resumes catch-up where
//     the standby stopped;
//   * fencing: promotion bumps the persisted token, a zombie primary's
//     late ships are rejected, and a higher observed token is adopted;
//   * divergence: mismatched digests are a hard Corruption failure;
//   * read gating: a lagging standby serves kUnavailable, not stale order.

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/common/update_buffer.h"
#include "core/wbox/wbox.h"
#include "gtest/gtest.h"
#include "replication/digest.h"
#include "replication/frame.h"
#include "replication/standby_applier.h"
#include "replication/transport.h"
#include "replication/wal_shipper.h"
#include "storage/metadata_io.h"
#include "storage/page_cache.h"
#include "storage/page_store.h"
#include "storage/wal.h"
#include "test_util.h"

namespace boxes::testing {
namespace {

using replication::ComputeReplicationDigest;
using replication::DecodeShipFrame;
using replication::EncodeShipFrame;
using replication::FaultyLink;
using replication::LinkFaultOptions;
using replication::ReplicationDigest;
using replication::ShipFrame;
using replication::StandbyApplier;
using replication::StandbyApplierOptions;
using replication::WalShipper;

constexpr size_t kPageSize = 1024;

std::string TempDbPath(const std::string& tag) {
  const std::string path = ::testing::TempDir() + "/boxes_repl_" + tag + ".db";
  std::remove(path.c_str());
  std::remove((path + ".journal").c_str());
  return path;
}

// One primary write stack over any store, with a shipper on `link`.
struct Primary {
  Primary(PageStore* store, FaultyLink* link)
      : cache(store),
        scheme(&cache),
        pipeline(&cache, &scheme, {.checkpoint_interval = 0}),
        buffer(&scheme, {.flush_threshold = 1024, .auto_flush = false}),
        shipper(&pipeline, &cache, link, nullptr) {}

  Status Start(bool fresh = true) {
    if (fresh) {
      BOXES_RETURN_IF_ERROR(InitializeSuperblock(&cache));
    }
    BOXES_RETURN_IF_ERROR(pipeline.Init());
    pipeline.Attach(&buffer);
    shipper.Attach();
    return Status::OK();
  }

  // One acked flush of `n` inserts anchored before `before`.
  StatusOr<std::vector<NewElement>> InsertFlush(int n, Lid before) {
    std::vector<UpdateBuffer::Ticket> tickets;
    for (int i = 0; i < n; ++i) {
      BOXES_ASSIGN_OR_RETURN(const UpdateBuffer::Ticket ticket,
                             buffer.InsertElementBefore(before));
      tickets.push_back(ticket);
    }
    BOXES_RETURN_IF_ERROR(buffer.Flush());
    std::vector<NewElement> out;
    for (const UpdateBuffer::Ticket ticket : tickets) {
      BOXES_ASSIGN_OR_RETURN(const NewElement element, buffer.Result(ticket));
      out.push_back(element);
    }
    return out;
  }

  StatusOr<NewElement> CreateRoot() {
    BOXES_ASSIGN_OR_RETURN(const UpdateBuffer::Ticket ticket,
                           buffer.InsertFirstElement());
    BOXES_RETURN_IF_ERROR(buffer.Flush());
    return buffer.Result(ticket);
  }

  PageCache cache;
  WBox scheme;
  WalPipeline pipeline;
  UpdateBuffer buffer;
  WalShipper shipper;
};

// One standby apply stack over any store.
struct Standby {
  Standby(PageStore* store, FaultyLink* link, StandbyApplierOptions options = {})
      : cache(store),
        scheme(&cache),
        applier(&cache, &scheme, link, nullptr, options) {}

  Status Start(bool fresh = true) {
    if (fresh) {
      BOXES_RETURN_IF_ERROR(InitializeSuperblock(&cache));
    }
    return applier.Init();
  }

  PageCache cache;
  WBox scheme;
  StandbyApplier applier;
};

// Pumps `applier` to the primary's log horizon, requesting re-ships for
// any hole the link swallowed. This loop IS the replication protocol's
// reliability layer; the transport guarantees nothing.
Status CatchUp(WalShipper* shipper, StandbyApplier* applier, FaultyLink* link,
               uint64_t target_next_batch) {
  for (int round = 0; round < 256; ++round) {
    BOXES_RETURN_IF_ERROR(applier->Pump());
    if (applier->next_expected() >= target_next_batch) {
      return Status::OK();
    }
    if (link->drained()) {
      BOXES_RETURN_IF_ERROR(shipper->ReShipFrom(applier->next_expected()));
    }
  }
  return Status::Internal("standby stuck at batch " +
                          std::to_string(applier->next_expected()));
}

void ExpectDigestsEqual(LabelingScheme* primary, LabelingScheme* standby) {
  ASSERT_OK_AND_ASSIGN(const ReplicationDigest a,
                       ComputeReplicationDigest(primary));
  ASSERT_OK_AND_ASSIGN(const ReplicationDigest b,
                       ComputeReplicationDigest(standby));
  EXPECT_EQ(a, b) << "primary " << a.ToString() << " vs standby "
                  << b.ToString();
}

// ---------------------------------------------------------------------------
// Frame codec.

TEST(ShipFrameTest, RoundTripsHeaderAndPayload) {
  ShipFrame frame;
  frame.fencing_token = 7;
  frame.generation = 3;
  frame.batch_id = 42;
  frame.op_count = 5;
  frame.ship_micros = 123456789;
  frame.payload = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  const std::vector<uint8_t> bytes = EncodeShipFrame(frame);
  ShipFrame decoded;
  ASSERT_TRUE(DecodeShipFrame(bytes, &decoded));
  EXPECT_EQ(decoded.fencing_token, 7u);
  EXPECT_EQ(decoded.generation, 3u);
  EXPECT_EQ(decoded.batch_id, 42u);
  EXPECT_EQ(decoded.op_count, 5u);
  EXPECT_EQ(decoded.ship_micros, 123456789u);
  EXPECT_EQ(decoded.payload, frame.payload);
}

TEST(ShipFrameTest, EmptyPayloadRoundTrips) {
  ShipFrame frame;
  frame.batch_id = 1;
  const std::vector<uint8_t> bytes = EncodeShipFrame(frame);
  ShipFrame decoded;
  ASSERT_TRUE(DecodeShipFrame(bytes, &decoded));
  EXPECT_TRUE(decoded.payload.empty());
}

TEST(ShipFrameTest, AnyTruncationOrFlipIsRejectedWhole) {
  ShipFrame frame;
  frame.batch_id = 9;
  frame.payload.assign(64, 0xab);
  const std::vector<uint8_t> bytes = EncodeShipFrame(frame);
  ShipFrame decoded;
  // Every strict prefix is rejected (the torn-frame path).
  for (size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<uint8_t> torn(bytes.begin(), bytes.begin() + len);
    EXPECT_FALSE(DecodeShipFrame(torn, &decoded)) << "prefix " << len;
  }
  // Every single-byte flip is rejected: header flips fail the header CRC,
  // payload flips fail the payload CRC.
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::vector<uint8_t> flipped = bytes;
    flipped[i] ^= 0x40;
    EXPECT_FALSE(DecodeShipFrame(flipped, &decoded)) << "flip at " << i;
  }
}

// ---------------------------------------------------------------------------
// Transport.

TEST(FaultyLinkTest, CleanLinkDeliversInOrder) {
  FaultyLink link;
  ASSERT_OK(link.Send({1}));
  ASSERT_OK(link.Send({2}));
  std::vector<uint8_t> out;
  ASSERT_TRUE(link.Receive(&out));
  EXPECT_EQ(out, std::vector<uint8_t>{1});
  ASSERT_TRUE(link.Receive(&out));
  EXPECT_EQ(out, std::vector<uint8_t>{2});
  EXPECT_FALSE(link.Receive(&out));
  EXPECT_EQ(link.delivered(), 2u);
}

TEST(FaultyLinkTest, DownLinkRefusesSendsButDrainsDeliveredFrames) {
  FaultyLink link;
  ASSERT_OK(link.Send({1}));
  link.SetDown(true);
  const Status refused = link.Send({2});
  EXPECT_EQ(refused.code(), StatusCode::kUnavailable);
  std::vector<uint8_t> out;
  EXPECT_TRUE(link.Receive(&out));  // pre-cut frame still drains
  EXPECT_FALSE(link.Receive(&out));
}

TEST(FaultyLinkTest, SeededFaultsAreDeterministic) {
  LinkFaultOptions faults;
  faults.drop_probability = 0.3;
  faults.duplicate_probability = 0.2;
  faults.reorder_probability = 0.2;
  faults.seed = 77;
  auto run = [&faults]() {
    FaultyLink link(faults);
    std::vector<std::vector<uint8_t>> got;
    for (uint8_t i = 0; i < 50; ++i) {
      EXPECT_TRUE(link.Send({i}).ok());
    }
    std::vector<uint8_t> out;
    while (link.Receive(&out)) {
      got.push_back(out);
    }
    return got;
  };
  EXPECT_EQ(run(), run());
  FaultyLink link(faults);
  for (uint8_t i = 0; i < 50; ++i) {
    EXPECT_TRUE(link.Send({i}).ok());
  }
  EXPECT_GT(link.dropped(), 0u);
  EXPECT_GT(link.duplicated(), 0u);
}

// ---------------------------------------------------------------------------
// Steady-state shipping.

TEST(ReplicationTest, EveryAckedFlushAppliesOnTheStandby) {
  MemoryPageStore primary_store(kPageSize);
  MemoryPageStore standby_store(kPageSize);
  FaultyLink link;
  Primary primary(&primary_store, &link);
  Standby standby(&standby_store, &link);
  ASSERT_OK(primary.Start());
  ASSERT_OK(standby.Start());

  ASSERT_OK_AND_ASSIGN(const NewElement root, primary.CreateRoot());
  for (int f = 0; f < 5; ++f) {
    ASSERT_OK(primary.InsertFlush(4, root.end).status());
  }
  ASSERT_OK(CatchUp(&primary.shipper, &standby.applier, &link,
                    primary.pipeline.writer().next_batch_id()));
  EXPECT_EQ(standby.applier.applied_batches(), 6u);
  EXPECT_EQ(standby.applier.lag_batches(), 0u);
  ExpectDigestsEqual(&primary.scheme, &standby.scheme);
  // Acked LIDs resolve identically on the standby.
  ASSERT_OK(standby.scheme.Lookup(root.start).status());
  ASSERT_OK(standby.scheme.Lookup(root.end).status());
}

TEST(ReplicationTest, DuplicatedFramesApplyOnce) {
  MemoryPageStore primary_store(kPageSize);
  MemoryPageStore standby_store(kPageSize);
  LinkFaultOptions faults;
  faults.duplicate_probability = 1.0;  // every frame arrives twice
  FaultyLink link(faults);
  Primary primary(&primary_store, &link);
  Standby standby(&standby_store, &link);
  ASSERT_OK(primary.Start());
  ASSERT_OK(standby.Start());

  ASSERT_OK_AND_ASSIGN(const NewElement root, primary.CreateRoot());
  for (int f = 0; f < 4; ++f) {
    ASSERT_OK(primary.InsertFlush(3, root.end).status());
  }
  ASSERT_OK(CatchUp(&primary.shipper, &standby.applier, &link,
                    primary.pipeline.writer().next_batch_id()));
  EXPECT_EQ(standby.applier.applied_batches(), 5u);
  EXPECT_GE(standby.applier.duplicate_frames(), 5u);
  ExpectDigestsEqual(&primary.scheme, &standby.scheme);
}

TEST(ReplicationTest, DroppedFramesAreDetectedAsGapsAndReShipped) {
  MemoryPageStore primary_store(kPageSize);
  MemoryPageStore standby_store(kPageSize);
  LinkFaultOptions faults;
  faults.drop_probability = 0.5;
  faults.seed = 3;
  FaultyLink link(faults);
  Primary primary(&primary_store, &link);
  Standby standby(&standby_store, &link);
  ASSERT_OK(primary.Start());
  ASSERT_OK(standby.Start());

  ASSERT_OK_AND_ASSIGN(const NewElement root, primary.CreateRoot());
  for (int f = 0; f < 8; ++f) {
    ASSERT_OK(primary.InsertFlush(3, root.end).status());
  }
  ASSERT_OK(CatchUp(&primary.shipper, &standby.applier, &link,
                    primary.pipeline.writer().next_batch_id()));
  EXPECT_GT(primary.shipper.ship_retries(), 0u);
  ExpectDigestsEqual(&primary.scheme, &standby.scheme);
}

TEST(ReplicationTest, TornFramesAreCountedAndHealedByCatchUp) {
  MemoryPageStore primary_store(kPageSize);
  MemoryPageStore standby_store(kPageSize);
  FaultyLink link;
  Primary primary(&primary_store, &link);
  Standby standby(&standby_store, &link);
  ASSERT_OK(primary.Start());
  ASSERT_OK(standby.Start());

  ASSERT_OK_AND_ASSIGN(const NewElement root, primary.CreateRoot());
  ASSERT_OK(primary.InsertFlush(3, root.end).status());
  // Hand-tear a frame on the wire: decode fails, the standby treats it
  // exactly like a drop and catch-up re-ships the hole.
  ShipFrame bogus;
  bogus.batch_id = 99;
  std::vector<uint8_t> torn = EncodeShipFrame(bogus);
  torn.resize(torn.size() / 2);
  ASSERT_OK(link.Send(std::move(torn)));
  ASSERT_OK(CatchUp(&primary.shipper, &standby.applier, &link,
                    primary.pipeline.writer().next_batch_id()));
  EXPECT_EQ(standby.applier.torn_frames(), 1u);
  ExpectDigestsEqual(&primary.scheme, &standby.scheme);
}

TEST(ReplicationTest, ReShipFromRefusesWhenTheLogWasTruncatedPastTheGap) {
  MemoryPageStore primary_store(kPageSize);
  MemoryPageStore standby_store(kPageSize);
  FaultyLink link;
  Primary primary(&primary_store, &link);
  Standby standby(&standby_store, &link);
  ASSERT_OK(primary.Start());
  ASSERT_OK(standby.Start());

  ASSERT_OK_AND_ASSIGN(const NewElement root, primary.CreateRoot());
  ASSERT_OK(primary.InsertFlush(3, root.end).status());
  // Checkpoint: the WAL mark advances and the old batches' log pages go
  // back to the free list. They are recycled lazily — more traffic reuses
  // them — after which a standby still at batch 1 is beyond help from the
  // log alone and must re-bootstrap from a backup byte copy.
  ASSERT_OK(primary.pipeline.CheckpointNow());
  Status refused = Status::OK();
  for (int f = 0; f < 64 && refused.ok(); ++f) {
    ASSERT_OK(primary.InsertFlush(3, root.end).status());
    refused = primary.shipper.ReShipFrom(1);
  }
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Read gating.

TEST(ReplicationTest, ReadGateIsUnavailableWhileLaggingAndOkWhenCaughtUp) {
  MemoryPageStore primary_store(kPageSize);
  MemoryPageStore standby_store(kPageSize);
  FaultyLink link;
  Primary primary(&primary_store, &link);
  Standby standby(&standby_store, &link);
  ASSERT_OK(primary.Start());
  ASSERT_OK(standby.Start());

  ASSERT_OK_AND_ASSIGN(const NewElement root, primary.CreateRoot());
  ASSERT_OK(primary.InsertFlush(3, root.end).status());
  // The standby has seen frames (horizon advanced) but not applied them.
  std::vector<uint8_t> bytes;
  ShipFrame frame;
  // Peek without applying: push one frame back after inspecting.
  ASSERT_TRUE(link.Receive(&bytes));
  ASSERT_TRUE(DecodeShipFrame(bytes, &frame));
  EXPECT_GE(frame.batch_id, 1u);
  ASSERT_OK(link.Send(bytes));  // clean link: arrives intact
  ASSERT_OK(CatchUp(&primary.shipper, &standby.applier, &link,
                    primary.pipeline.writer().next_batch_id()));
  EXPECT_EQ(standby.applier.lag_batches(), 0u);
  ASSERT_OK(standby.applier.ReadGate());

  // New primary traffic the standby has not pumped yet: gate closes after
  // the next pump observes the fresher horizon.
  ASSERT_OK(primary.InsertFlush(3, root.end).status());
  std::vector<uint8_t> frame_bytes;
  ASSERT_TRUE(link.Receive(&frame_bytes));
  ShipFrame fresh;
  ASSERT_TRUE(DecodeShipFrame(frame_bytes, &fresh));
  // Deliver a doctored copy claiming a horizon one past what we apply:
  // the standby knows it lags and must gate reads.
  ShipFrame future = fresh;
  future.batch_id = fresh.batch_id + 1;
  ASSERT_OK(link.Send(EncodeShipFrame(future)));
  ASSERT_OK(standby.applier.Pump());
  EXPECT_GT(standby.applier.lag_batches(), 0u);
  const Status gated = standby.applier.ReadGate();
  EXPECT_EQ(gated.code(), StatusCode::kUnavailable);
}

// ---------------------------------------------------------------------------
// Bootstrap from an online-backup byte copy.

void CopyFileBytes(const std::string& from, const std::string& to,
                   bool required = true) {
  std::ifstream in(from, std::ios::binary | std::ios::ate);
  if (!in.good()) {
    ASSERT_FALSE(required) << from;
    return;
  }
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::ofstream out(to, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << to;
  if (size > 0) {
    out << in.rdbuf();
  }
  ASSERT_TRUE(out.good());
}

TEST(ReplicationTest, StandbyBootstrapsFromByteCopyAndCatchesUp) {
  const std::string path = TempDbPath("bootstrap_src");
  const std::string copy = TempDbPath("bootstrap_dst");
  FilePageStore primary_store(path, kPageSize);
  ASSERT_OK(primary_store.status());
  FaultyLink link;
  Primary primary(&primary_store, &link);
  ASSERT_OK(primary.Start());
  ASSERT_OK_AND_ASSIGN(const NewElement root, primary.CreateRoot());
  for (int f = 0; f < 3; ++f) {
    ASSERT_OK(primary.InsertFlush(4, root.end).status());
  }
  CopyFileBytes(path, copy);
  CopyFileBytes(path + ".journal", copy + ".journal", /*required=*/false);
  // The primary keeps writing after the copy.
  for (int f = 0; f < 3; ++f) {
    ASSERT_OK(primary.InsertFlush(4, root.end).status());
  }
  // Every frame shipped so far is lost — the standby did not exist yet —
  // so the catch-up below must come entirely out of the primary's log.
  std::vector<uint8_t> discard;
  while (link.Receive(&discard)) {
  }

  // Bootstrap: recover the copy (checkpoint + its local log tail), then
  // resume shipping from where the copy's own log ended.
  FilePageStore standby_store(copy, kPageSize, FilePageStore::Mode::kOpen);
  ASSERT_OK(standby_store.status());
  PageCache standby_cache(&standby_store);
  WBox standby_scheme(&standby_cache);
  ASSERT_OK_AND_ASSIGN(
      const WalRecoveryResult recovered,
      RecoverWithWal(
          &standby_cache, &standby_scheme,
          [&](PageId head) { return standby_scheme.Restore(head); }, {}));
  StandbyApplier applier(&standby_cache, &standby_scheme, &link);
  ASSERT_OK(applier.InitFromRecovery(recovered));
  EXPECT_EQ(applier.next_expected(), 5u);  // copy held batches 1..4
  ASSERT_OK(CatchUp(&primary.shipper, &applier, &link,
                    primary.pipeline.writer().next_batch_id()));
  EXPECT_GT(primary.shipper.ship_retries(), 0u);  // the copy-gap re-ships
  ExpectDigestsEqual(&primary.scheme, &standby_scheme);
}

TEST(ReplicationTest, RestartedStandbyResumesFromPersistedHorizon) {
  const std::string path = TempDbPath("restart_standby");
  MemoryPageStore primary_store(kPageSize);
  FaultyLink link;
  Primary primary(&primary_store, &link);
  ASSERT_OK(primary.Start());
  ASSERT_OK_AND_ASSIGN(const NewElement root, primary.CreateRoot());
  for (int f = 0; f < 5; ++f) {
    ASSERT_OK(primary.InsertFlush(4, root.end).status());
  }

  // First standby life: apply everything, checkpointing each batch so the
  // horizon is persisted, then "crash" (destroy without flushing).
  {
    FilePageStore standby_store(path, kPageSize);
    ASSERT_OK(standby_store.status());
    Standby standby(&standby_store, &link,
                    StandbyApplierOptions{.checkpoint_interval = 1});
    ASSERT_OK(standby.Start());
    ASSERT_OK(CatchUp(&primary.shipper, &standby.applier, &link,
                      primary.pipeline.writer().next_batch_id()));
    ExpectDigestsEqual(&primary.scheme, &standby.scheme);
  }

  // More primary traffic while the standby is gone; those frames are lost
  // with the dead process.
  for (int f = 0; f < 3; ++f) {
    ASSERT_OK(primary.InsertFlush(4, root.end).status());
  }
  std::vector<uint8_t> discard;
  while (link.Receive(&discard)) {
  }

  // Second life: recover the standby's own store, resume at the persisted
  // horizon, and catch up purely via re-ships.
  FilePageStore standby_store(path, kPageSize, FilePageStore::Mode::kOpen);
  ASSERT_OK(standby_store.status());
  PageCache standby_cache(&standby_store);
  WBox standby_scheme(&standby_cache);
  ASSERT_OK_AND_ASSIGN(
      const WalRecoveryResult recovered,
      RecoverWithWal(
          &standby_cache, &standby_scheme,
          [&](PageId head) { return standby_scheme.Restore(head); }, {}));
  StandbyApplier applier(&standby_cache, &standby_scheme, &link);
  ASSERT_OK(applier.InitFromRecovery(recovered));
  EXPECT_EQ(applier.next_expected(), 7u);  // applied 1..6 before the crash
  ASSERT_OK(CatchUp(&primary.shipper, &applier, &link,
                    primary.pipeline.writer().next_batch_id()));
  ExpectDigestsEqual(&primary.scheme, &standby_scheme);
}

// ---------------------------------------------------------------------------
// Fencing and promotion.

TEST(ReplicationTest, PromotionBumpsThePersistedTokenAndFencesZombieShips) {
  MemoryPageStore primary_store(kPageSize);
  MemoryPageStore standby_store(kPageSize);
  FaultyLink link;
  Primary primary(&primary_store, &link);
  Standby standby(&standby_store, &link);
  ASSERT_OK(primary.Start());
  ASSERT_OK(standby.Start());

  ASSERT_OK_AND_ASSIGN(const NewElement root, primary.CreateRoot());
  ASSERT_OK(primary.InsertFlush(4, root.end).status());
  ASSERT_OK(CatchUp(&primary.shipper, &standby.applier, &link,
                    primary.pipeline.writer().next_batch_id()));

  ASSERT_OK(standby.applier.Promote());
  EXPECT_EQ(standby.applier.fencing_token(), 1u);
  // Persisted: the superblock carries the new token and the horizon.
  ASSERT_OK_AND_ASSIGN(const SuperblockInfo info,
                       LoadSuperblock(&standby.cache));
  EXPECT_EQ(info.fencing_token, 1u);
  EXPECT_EQ(info.wal_mark, standby.applier.next_expected());

  // A promoted store's pipeline continues ids at the horizon, fenced.
  WalPipeline promoted(&standby.cache, &standby.scheme,
                       {.checkpoint_interval = 0});
  ASSERT_OK(promoted.Init());
  EXPECT_EQ(promoted.fencing_token(), 1u);
  EXPECT_EQ(promoted.writer().next_batch_id(), standby.applier.next_expected());

  // The deposed primary does not know: its next acked flush ships under
  // the old token and MUST bounce.
  ASSERT_OK(primary.InsertFlush(2, root.end).status());
  const uint64_t applied_before = standby.applier.applied_batches();
  ASSERT_OK(standby.applier.Pump());
  EXPECT_GT(standby.applier.fenced_rejects(), 0u);
  EXPECT_EQ(standby.applier.applied_batches(), applied_before);
}

TEST(ReplicationTest, StandbyAdoptsAHigherObservedToken) {
  MemoryPageStore standby_store(kPageSize);
  FaultyLink link;
  Standby standby(&standby_store, &link);
  ASSERT_OK(standby.Start());
  EXPECT_EQ(standby.applier.fencing_token(), 0u);
  // A frame from a primary that was itself promoted elsewhere: higher
  // token, unknown batch — the token is adopted even though the batch
  // waits in the reorder buffer.
  ShipFrame frame;
  frame.fencing_token = 5;
  frame.batch_id = 100;
  ASSERT_OK(link.Send(EncodeShipFrame(frame)));
  ASSERT_OK(standby.applier.Pump());
  EXPECT_EQ(standby.applier.fencing_token(), 5u);
}

// ---------------------------------------------------------------------------
// Divergence detection.

TEST(ReplicationTest, DivergentStandbyFailsTheDigestCheckHard) {
  MemoryPageStore primary_store(kPageSize);
  MemoryPageStore standby_store(kPageSize);
  FaultyLink link;
  Primary primary(&primary_store, &link);
  Standby standby(&standby_store, &link);
  ASSERT_OK(primary.Start());
  ASSERT_OK(standby.Start());

  ASSERT_OK_AND_ASSIGN(const NewElement root, primary.CreateRoot());
  ASSERT_OK(primary.InsertFlush(4, root.end).status());
  ASSERT_OK(CatchUp(&primary.shipper, &standby.applier, &link,
                    primary.pipeline.writer().next_batch_id()));
  ASSERT_OK_AND_ASSIGN(const ReplicationDigest primary_digest,
                       ComputeReplicationDigest(&primary.scheme));
  ASSERT_OK(standby.applier.CheckDivergence(primary_digest));

  // Corrupt the standby out-of-band: one extra element it never got from
  // the log. The next divergence check must hard-fail.
  {
    UpdateBuffer rogue(&standby.scheme,
                       {.flush_threshold = 1024, .auto_flush = false});
    ASSERT_OK(rogue.InsertElementBefore(root.end).status());
    ASSERT_OK(rogue.Flush());
  }
  const Status diverged = standby.applier.CheckDivergence(primary_digest);
  EXPECT_EQ(diverged.code(), StatusCode::kCorruption);
}

TEST(ReplicationTest, DigestIsOrderSensitiveNotJustCountSensitive) {
  // Two schemes with the same live-label count but different label values
  // must digest differently — the CRC chain hashes (lid, components) in
  // LID order.
  MemoryPageStore store_a(kPageSize);
  MemoryPageStore store_b(kPageSize);
  FaultyLink link;
  Primary a(&store_a, &link);
  ASSERT_OK(a.Start());
  ASSERT_OK_AND_ASSIGN(const NewElement root_a, a.CreateRoot());
  ASSERT_OK(a.InsertFlush(3, root_a.end).status());

  Primary b(&store_b, &link);
  ASSERT_OK(b.Start());
  ASSERT_OK_AND_ASSIGN(const NewElement root_b, b.CreateRoot());
  ASSERT_OK_AND_ASSIGN(const std::vector<NewElement> siblings,
                       b.InsertFlush(2, root_b.end));
  ASSERT_OK(b.InsertFlush(1, siblings.front().start).status());

  ASSERT_OK_AND_ASSIGN(const ReplicationDigest da,
                       ComputeReplicationDigest(&a.scheme));
  ASSERT_OK_AND_ASSIGN(const ReplicationDigest db,
                       ComputeReplicationDigest(&b.scheme));
  EXPECT_EQ(da.live_labels, db.live_labels);
  EXPECT_NE(da, db);
}

}  // namespace
}  // namespace boxes::testing
