#include "workload/sequences.h"

#include <memory>

#include "core/bbox/bbox.h"
#include "core/naive/naive.h"
#include "core/wbox/wbox.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "xml/generators.h"
#include "xml/xmark.h"

namespace boxes {
namespace {

using testing::TestDb;
using workload::RunStats;

TEST(WorkloadTest, ConcentratedSequenceRunsOnAllSchemes) {
  {
    TestDb db(1024);
    WBox wbox(&db.cache);
    RunStats stats;
    ASSERT_OK(workload::RunConcentratedInsertion(&wbox, &db.cache, 500, 300,
                                                 &stats));
    EXPECT_EQ(stats.per_op_cost.count(), 300u);
    ASSERT_OK(wbox.CheckInvariants());
    EXPECT_EQ(wbox.live_labels(), 2u * 800u);
  }
  {
    TestDb db(1024);
    BBox bbox(&db.cache);
    RunStats stats;
    ASSERT_OK(workload::RunConcentratedInsertion(&bbox, &db.cache, 500, 300,
                                                 &stats));
    ASSERT_OK(bbox.CheckInvariants());
    EXPECT_EQ(bbox.live_labels(), 2u * 800u);
  }
  {
    TestDb db(1024);
    NaiveScheme naive(&db.cache, {.gap_bits = 4, .count_bits = 20});
    RunStats stats;
    ASSERT_OK(workload::RunConcentratedInsertion(&naive, &db.cache, 500, 300,
                                                 &stats));
    ASSERT_OK(naive.CheckInvariants());
    EXPECT_GT(naive.relabel_count(), 0u);  // adversarial by design
  }
}

TEST(WorkloadTest, ConcentratedSequenceKeepsDocumentOrder) {
  // White-box check of the squeeze pattern itself: run it against W-BOX and
  // verify the resulting sibling labels are properly nested.
  TestDb db(1024);
  WBox wbox(&db.cache);
  RunStats stats;
  ASSERT_OK(
      workload::RunConcentratedInsertion(&wbox, &db.cache, 50, 101, &stats));
  ASSERT_OK(wbox.CheckInvariants());
}

TEST(WorkloadTest, ScatteredSequenceIsCheapForNaive) {
  TestDb db(1024);
  NaiveScheme naive(&db.cache, {.gap_bits = 8, .count_bits = 30});
  RunStats stats;
  ASSERT_OK(
      workload::RunScatteredInsertion(&naive, &db.cache, 2000, 500, &stats));
  EXPECT_EQ(naive.relabel_count(), 0u);
  // Every insert stays within a handful of LIDF pages.
  EXPECT_LT(stats.MeanCost(), 8.0);
  ASSERT_OK(naive.CheckInvariants());
}

TEST(WorkloadTest, DocumentOrderSequenceMatchesDocument) {
  TestDb db(1024);
  WBox wbox(&db.cache);
  const xml::Document doc = xml::MakeXmarkDocument(3000, 5);
  RunStats stats;
  std::vector<NewElement> lids;
  ASSERT_OK(workload::RunDocumentOrderInsertion(&wbox, &db.cache, doc, 1000,
                                                &stats, &lids));
  EXPECT_EQ(stats.per_op_cost.count(), doc.element_count() - 1000);
  ASSERT_OK(wbox.CheckInvariants());
  EXPECT_EQ(wbox.live_labels(), doc.tag_count());
  // Order of all tags matches the document.
  EXPECT_TRUE(testing::LabelsStrictlyIncreasing(
      &wbox, testing::TagOrderLids(doc, lids)));
}

TEST(WorkloadTest, MeasureLookupsCountsOps) {
  TestDb db;
  BBox bbox(&db.cache);
  const xml::Document doc = xml::MakeTwoLevelDocument(500);
  std::vector<NewElement> lids;
  ASSERT_OK(bbox.BulkLoad(doc, &lids));
  RunStats single;
  ASSERT_OK(workload::MeasureLookups(&bbox, &db.cache, lids, 50,
                                     /*pairs=*/false, 7, &single));
  EXPECT_EQ(single.per_op_cost.count(), 50u);
  EXPECT_GE(single.per_op_cost.min(), 2u);  // LIDF + at least the leaf
  RunStats pair;
  ASSERT_OK(workload::MeasureLookups(&bbox, &db.cache, lids, 50,
                                     /*pairs=*/true, 7, &pair));
  EXPECT_GE(pair.MeanCost(), single.MeanCost());
}

}  // namespace
}  // namespace boxes
