#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "test_util.h"
#include "xml/document.h"
#include "xml/generators.h"
#include "xml/parser.h"
#include "xml/writer.h"
#include "xml/xmark.h"

namespace boxes::xml {
namespace {

TEST(DocumentTest, BuildAndQuery) {
  Document doc;
  const ElementId root = doc.AddRoot("site");
  const ElementId a = doc.AddChild(root, "a");
  const ElementId b = doc.AddChild(root, "b");
  const ElementId c = doc.AddChild(a, "c");
  EXPECT_EQ(doc.element_count(), 4u);
  EXPECT_EQ(doc.tag_count(), 8u);
  EXPECT_EQ(doc.Depth(), 3u);
  EXPECT_EQ(doc.SubtreeSize(root), 4u);
  EXPECT_EQ(doc.SubtreeSize(a), 2u);
  EXPECT_EQ(doc.element(c).parent, a);
  EXPECT_EQ(doc.PreorderIds(), (std::vector<ElementId>{root, a, c, b}));
  ASSERT_OK(doc.Validate());
}

TEST(DocumentTest, AddChildAtInsertsInOrder) {
  Document doc;
  const ElementId root = doc.AddRoot("r");
  const ElementId c = doc.AddChild(root, "c");
  const ElementId a = doc.AddChildAt(root, 0, "a");
  const ElementId b = doc.AddChildAt(root, 1, "b");
  EXPECT_EQ(doc.element(root).children, (std::vector<ElementId>{a, b, c}));
  ASSERT_OK(doc.Validate());
}

TEST(DocumentTest, ForEachTagYieldsProperNesting) {
  Document doc;
  const ElementId root = doc.AddRoot("r");
  const ElementId a = doc.AddChild(root, "a");
  doc.AddChild(root, "b");
  doc.AddChild(a, "c");
  std::vector<std::pair<ElementId, bool>> tags;
  doc.ForEachTag([&](ElementId id, bool is_start) {
    tags.push_back({id, is_start});
  });
  ASSERT_EQ(tags.size(), doc.tag_count());
  // r< a< c< c> a> b< b> r>
  EXPECT_EQ(tags.front(), (std::pair<ElementId, bool>{root, true}));
  EXPECT_EQ(tags.back(), (std::pair<ElementId, bool>{root, false}));
  // Well-formedness: starts and ends balance like parentheses.
  std::vector<ElementId> stack;
  for (const auto& [id, is_start] : tags) {
    if (is_start) {
      stack.push_back(id);
    } else {
      ASSERT_FALSE(stack.empty());
      EXPECT_EQ(stack.back(), id);
      stack.pop_back();
    }
  }
  EXPECT_TRUE(stack.empty());
}

TEST(DocumentTest, ExtractSubtreePreservesShape) {
  Document doc;
  const ElementId root = doc.AddRoot("r");
  const ElementId a = doc.AddChild(root, "a");
  doc.AddChild(a, "x");
  doc.AddChild(a, "y");
  doc.AddChild(root, "b");
  Document sub = doc.ExtractSubtree(a);
  ASSERT_OK(sub.Validate());
  EXPECT_EQ(sub.element_count(), 3u);
  EXPECT_EQ(sub.element(sub.root()).tag, "a");
  EXPECT_EQ(sub.element(sub.element(sub.root()).children[0]).tag, "x");
  EXPECT_EQ(sub.element(sub.element(sub.root()).children[1]).tag, "y");
}

TEST(ParserTest, ParsesBasicDocument) {
  ASSERT_OK_AND_ASSIGN(
      const Document doc,
      ParseDocument("<site><regions><item/></regions><people/></site>"));
  EXPECT_EQ(doc.element_count(), 4u);
  EXPECT_EQ(doc.element(doc.root()).tag, "site");
  ASSERT_OK(doc.Validate());
}

TEST(ParserTest, SkipsPrologCommentsTextAndAttributes) {
  const std::string input = R"(<?xml version="1.0"?>
<!DOCTYPE site>
<!-- a comment -->
<site id="1" name='x'>
  some text &amp; entities
  <item price="3.5"><![CDATA[<ignored/>]]></item>
</site>)";
  ASSERT_OK_AND_ASSIGN(const Document doc, ParseDocument(input));
  EXPECT_EQ(doc.element_count(), 2u);
  EXPECT_EQ(doc.element(1).tag, "item");
}

TEST(ParserTest, RejectsMismatchedTags) {
  EXPECT_FALSE(ParseDocument("<a><b></a></b>").ok());
  EXPECT_FALSE(ParseDocument("<a>").ok());
  EXPECT_FALSE(ParseDocument("</a>").ok());
  EXPECT_FALSE(ParseDocument("<a/><b/>").ok());
  EXPECT_FALSE(ParseDocument("").ok());
  EXPECT_FALSE(ParseDocument("just text").ok());
}

TEST(ParserTest, RejectsMalformedAttributes) {
  EXPECT_FALSE(ParseDocument("<a b></a>").ok());
  EXPECT_FALSE(ParseDocument("<a b=c></a>").ok());
  EXPECT_FALSE(ParseDocument("<a b=\"unterminated></a>").ok());
}

TEST(WriterTest, RoundTripsThroughParser) {
  Document doc;
  const ElementId root = doc.AddRoot("site");
  const ElementId a = doc.AddChild(root, "regions");
  doc.AddChild(a, "item");
  doc.AddChild(a, "item");
  doc.AddChild(root, "people");
  for (bool pretty : {true, false}) {
    const std::string text = WriteDocument(doc, pretty);
    ASSERT_OK_AND_ASSIGN(const Document parsed, ParseDocument(text));
    ASSERT_EQ(parsed.element_count(), doc.element_count());
    const auto original = doc.PreorderIds();
    const auto round = parsed.PreorderIds();
    for (size_t i = 0; i < original.size(); ++i) {
      EXPECT_EQ(doc.element(original[i]).tag, parsed.element(round[i]).tag);
      EXPECT_EQ(doc.element(original[i]).children.size(),
                parsed.element(round[i]).children.size());
    }
  }
}

TEST(GeneratorTest, TwoLevelDocument) {
  const Document doc = MakeTwoLevelDocument(1000);
  ASSERT_OK(doc.Validate());
  EXPECT_EQ(doc.element_count(), 1001u);
  EXPECT_EQ(doc.Depth(), 2u);
  EXPECT_EQ(doc.element(doc.root()).children.size(), 1000u);
}

TEST(GeneratorTest, RandomDocumentRespectsDepthAndIsDeterministic) {
  const Document doc1 = MakeRandomDocument(5000, 8, 42);
  const Document doc2 = MakeRandomDocument(5000, 8, 42);
  ASSERT_OK(doc1.Validate());
  EXPECT_EQ(doc1.element_count(), 5000u);
  EXPECT_LE(doc1.Depth(), 8u);
  EXPECT_EQ(doc1.PreorderIds(), doc2.PreorderIds());
  const Document doc3 = MakeRandomDocument(5000, 8, 43);
  EXPECT_NE(WriteDocument(doc1, false), WriteDocument(doc3, false));
}

TEST(GeneratorTest, BalancedDocument) {
  const Document doc = MakeBalancedDocument(1 + 3 + 9 + 27, 3);
  ASSERT_OK(doc.Validate());
  EXPECT_EQ(doc.element_count(), 40u);
  EXPECT_EQ(doc.Depth(), 4u);
}

TEST(XmarkTest, HitsTargetSizeAndShape) {
  const Document doc = MakeXmarkDocument(30000, 1);
  ASSERT_OK(doc.Validate());
  EXPECT_GE(doc.element_count(), 30000u);
  EXPECT_LE(doc.element_count(), 31000u);  // small overshoot only
  // XMark-like depth: nested descriptions put it around 8-12.
  EXPECT_GE(doc.Depth(), 6u);
  EXPECT_LE(doc.Depth(), 14u);
  EXPECT_EQ(doc.element(doc.root()).tag, "site");
  // All six top-level sections present.
  std::set<std::string> sections;
  for (ElementId child : doc.element(doc.root()).children) {
    sections.insert(doc.element(child).tag);
  }
  EXPECT_EQ(sections, (std::set<std::string>{"regions", "categories",
                                             "catgraph", "people",
                                             "open_auctions",
                                             "closed_auctions"}));
}

TEST(XmarkTest, DeterministicPerSeed) {
  const Document a = MakeXmarkDocument(5000, 9);
  const Document b = MakeXmarkDocument(5000, 9);
  EXPECT_EQ(a.element_count(), b.element_count());
  EXPECT_EQ(WriteDocument(a, false), WriteDocument(b, false));
}

}  // namespace
}  // namespace boxes::xml
