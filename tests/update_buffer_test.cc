// Tests of the group-commit write pipeline (DESIGN.md §4h) and of the two
// write-path fixes that ride with it:
//
//   * UpdateBuffer mechanics: tickets, auto-flush, one write epoch per
//     flushed batch, batch.* metrics;
//   * checkpoint sync accounting: Checkpoint() alone must not fdatasync at
//     all, a committed checkpoint costs exactly two fdatasyncs, and a
//     redundant commit (nothing dirty) costs exactly one — the regression
//     tests for the double-fsync-per-checkpoint bug;
//   * group commit amortization: sync calls per op strictly decrease as
//     the batch size grows;
//   * LID-stable subtree operations: subtree inserts/deletes interleaved
//     with relabel passes (naive-k RelabelAll, W-BOX global rebuilds) must
//     land exactly where their anchor LIDs say, no matter how label values
//     move mid-operation.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/bbox/bbox.h"
#include "core/common/update_buffer.h"
#include "core/naive/naive.h"
#include "core/wbox/wbox.h"
#include "gtest/gtest.h"
#include "model_tree.h"
#include "storage/metadata_io.h"
#include "storage/page_cache.h"
#include "storage/page_store.h"
#include "test_util.h"
#include "util/metrics.h"
#include "util/random.h"
#include "xml/generators.h"

namespace boxes::testing {
namespace {

constexpr size_t kPageSize = 1024;

std::string TempDbPath(const std::string& tag) {
  const std::string path =
      ::testing::TempDir() + "/boxes_ubuf_" + tag + ".db";
  std::remove(path.c_str());
  std::remove((path + ".journal").c_str());
  return path;
}

// ---------------------------------------------------------------------------
// UpdateBuffer mechanics (on the in-memory store).

TEST(UpdateBufferTest, TicketsResolveAfterFlush) {
  TestDb db;
  WBox scheme(&db.cache);
  UpdateBuffer buffer(&scheme, {.flush_threshold = 8, .auto_flush = false});

  ASSERT_OK_AND_ASSIGN(const UpdateBuffer::Ticket root_ticket,
                       buffer.InsertFirstElement());
  EXPECT_EQ(buffer.pending(), 1u);
  EXPECT_EQ(buffer.Result(root_ticket).status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_OK(buffer.Flush());
  EXPECT_EQ(buffer.pending(), 0u);
  ASSERT_OK_AND_ASSIGN(const NewElement root, buffer.Result(root_ticket));

  // Anchors must be live at batch start, so the follow-up batch anchors on
  // the already-flushed root.
  ASSERT_OK_AND_ASSIGN(const UpdateBuffer::Ticket child_ticket,
                       buffer.InsertElementBefore(root.end));
  ASSERT_OK_AND_ASSIGN(const UpdateBuffer::Ticket sibling_ticket,
                       buffer.InsertElementBefore(root.end));
  ASSERT_OK(buffer.Flush());
  ASSERT_OK_AND_ASSIGN(const NewElement child, buffer.Result(child_ticket));
  ASSERT_OK_AND_ASSIGN(const NewElement sibling,
                       buffer.Result(sibling_ticket));

  // Two inserts before the same anchor keep their enqueue order: root
  // start, child, sibling, root end.
  ASSERT_TRUE(LabelsStrictlyIncreasing(
      &scheme, {root.start, child.start, child.end, sibling.start,
                sibling.end, root.end}));
  EXPECT_EQ(buffer.batches_flushed(), 2u);
  EXPECT_EQ(buffer.ops_flushed(), 3u);
  ASSERT_OK(scheme.CheckInvariants());
}

TEST(UpdateBufferTest, UnknownTicketIsInvalid) {
  TestDb db;
  WBox scheme(&db.cache);
  UpdateBuffer buffer(&scheme);
  EXPECT_EQ(buffer.Result(42).status().code(), StatusCode::kInvalidArgument);
}

TEST(UpdateBufferTest, AutoFlushFiresAtThreshold) {
  TestDb db;
  WBox scheme(&db.cache);
  UpdateBuffer buffer(&scheme, {.flush_threshold = 1, .auto_flush = true});
  ASSERT_OK_AND_ASSIGN(const UpdateBuffer::Ticket root_ticket,
                       buffer.InsertFirstElement());
  ASSERT_OK_AND_ASSIGN(const NewElement root, buffer.Result(root_ticket));

  UpdateBuffer batched(&scheme, {.flush_threshold = 4, .auto_flush = true});
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK(batched.InsertElementBefore(root.end).status());
    EXPECT_EQ(batched.pending(), static_cast<size_t>(i + 1));
  }
  ASSERT_OK(batched.InsertElementBefore(root.end).status());
  EXPECT_EQ(batched.pending(), 0u);
  EXPECT_EQ(batched.batches_flushed(), 1u);
  EXPECT_EQ(batched.ops_flushed(), 4u);
}

TEST(UpdateBufferTest, OneEpochPerFlushedBatch) {
  TestDb db;
  WBox scheme(&db.cache);
  UpdateBuffer buffer(&scheme, {.flush_threshold = 64, .auto_flush = false});
  ASSERT_OK_AND_ASSIGN(const UpdateBuffer::Ticket root_ticket,
                       buffer.InsertFirstElement());
  ASSERT_OK(buffer.Flush());
  ASSERT_OK_AND_ASSIGN(const NewElement root, buffer.Result(root_ticket));

  const uint64_t before = scheme.epoch_guard().epoch();
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 5; ++i) {
      ASSERT_OK(buffer.InsertElementBefore(root.end).status());
    }
    ASSERT_OK(buffer.Flush());
  }
  // Three batches of five ops = exactly three committed write epochs.
  EXPECT_EQ(scheme.epoch_guard().epoch(), before + 3);
  ASSERT_OK(buffer.Flush());  // empty flush: no epoch
  EXPECT_EQ(scheme.epoch_guard().epoch(), before + 3);
}

// Regression: ApplyBatch's locality sort permutes the batch in place, so
// result tickets must travel with their ops (BatchOp::user_tag) rather
// than pair positionally. With positional pairing the two results below
// come back swapped — or, with deletes interleaved, as empty NewElements.
TEST(UpdateBufferTest, TicketsSurviveLocalitySortReordering) {
  TestDb db;
  NaiveScheme scheme(&db.cache,
                     NaiveOptions{.gap_bits = 16, .count_bits = 40});
  MetricsRegistry metrics;
  scheme.SetMetrics(&metrics);

  ASSERT_OK_AND_ASSIGN(const NewElement root, scheme.InsertFirstElement());
  std::vector<NewElement> children;
  for (int i = 0; i < 1200; ++i) {
    ASSERT_OK_AND_ASSIGN(const NewElement child,
                         scheme.InsertElementBefore(root.end));
    children.push_back(child);
  }

  // Enqueue anchored on a late LID first, an early LID second, with a
  // delete in between (deletes produce no result, which is what leaked
  // into insert tickets under positional pairing). naive's locality key
  // is the anchor's LIDF page, which ascends with allocation order, so
  // the sort must move the second insert ahead of the first.
  UpdateBuffer buffer(&scheme, {.flush_threshold = 8, .auto_flush = false});
  ASSERT_OK_AND_ASSIGN(const UpdateBuffer::Ticket last_ticket,
                       buffer.InsertElementBefore(children.back().start));
  const NewElement victim = children[children.size() / 2];
  ASSERT_OK(buffer.Delete(victim.start).status());
  ASSERT_OK(buffer.Delete(victim.end).status());
  ASSERT_OK_AND_ASSIGN(const UpdateBuffer::Ticket first_ticket,
                       buffer.InsertElementBefore(children.front().start));
  ASSERT_OK(buffer.Flush());
  EXPECT_GT(metrics.CounterValue("batch.reordered_ops"), 0u)
      << "anchors ~2400 LIDs apart must land on different LIDF pages";

  ASSERT_OK_AND_ASSIGN(const NewElement before_last,
                       buffer.Result(last_ticket));
  ASSERT_OK_AND_ASSIGN(const NewElement before_first,
                       buffer.Result(first_ticket));
  // Each result sits immediately before its own anchor.
  ASSERT_TRUE(LabelsStrictlyIncreasing(
      &scheme, {root.start, before_first.start, before_first.end,
                children.front().start}));
  ASSERT_TRUE(LabelsStrictlyIncreasing(
      &scheme, {children[children.size() - 2].end, before_last.start,
                before_last.end, children.back().start}));
  ASSERT_OK(scheme.CheckInvariants());
}

// Regression: destroying a buffer with unflushed ops used to drop them
// silently. It must fail loudly — abort in debug builds; in release
// builds, log and count the loss under buffer.dropped_ops.
TEST(UpdateBufferTest, DestructorFailsLoudlyOnUnflushedOps) {
  TestDb db;
  WBox scheme(&db.cache);
  MetricsRegistry metrics;
  scheme.SetMetrics(&metrics);
#ifndef NDEBUG
  EXPECT_DEATH(
      {
        UpdateBuffer doomed(&scheme,
                            {.flush_threshold = 64, .auto_flush = false});
        (void)doomed.InsertFirstElement();
      },
      "unflushed");
#else
  {
    UpdateBuffer doomed(&scheme,
                        {.flush_threshold = 64, .auto_flush = false});
    ASSERT_OK(doomed.InsertFirstElement().status());
    ASSERT_OK(doomed.InsertElementBefore(1).status());
  }
  EXPECT_EQ(metrics.CounterValue("buffer.dropped_ops"), 2u);
#endif
}

// After a persistent durability-hook failure Flush keeps the pending set
// intact for retry — correct for transient faults, but a caller whose
// device will never come back still needs a way out that is not the
// destructor abort. DiscardPending acknowledges the loss explicitly.
TEST(UpdateBufferTest, DiscardPendingReleasesOpsAfterPersistentFault) {
  TestDb db;
  WBox scheme(&db.cache);
  MetricsRegistry metrics;
  scheme.SetMetrics(&metrics);
  {
    UpdateBuffer buffer(&scheme,
                        {.flush_threshold = 64, .auto_flush = false});
    buffer.SetDurabilityHook([](const std::vector<BatchOp>&) {
      return Status::IoError("device is gone");
    });
    ASSERT_OK(buffer.InsertFirstElement().status());
    ASSERT_OK(buffer.InsertFirstElement().status());
    // The fault is persistent: every retry fails and the ops stay pending.
    EXPECT_EQ(buffer.Flush().code(), StatusCode::kIoError);
    EXPECT_EQ(buffer.Flush().code(), StatusCode::kIoError);
    EXPECT_EQ(buffer.pending(), 2u);
    EXPECT_EQ(buffer.DiscardPending(), 2u);
    EXPECT_EQ(buffer.pending(), 0u);
    EXPECT_EQ(buffer.DiscardPending(), 0u);  // idempotent, no double count
    // The destructor now runs with nothing pending: no abort (debug), no
    // second count (release).
  }
  EXPECT_EQ(metrics.CounterValue("buffer.dropped_ops"), 2u);
}

TEST(UpdateBufferTest, BatchMetricsAreRecorded) {
  TestDb db;
  WBox scheme(&db.cache);
  MetricsRegistry metrics;
  scheme.SetMetrics(&metrics);
  UpdateBuffer buffer(&scheme, {.flush_threshold = 64, .auto_flush = false});
  ASSERT_OK_AND_ASSIGN(const UpdateBuffer::Ticket root_ticket,
                       buffer.InsertFirstElement());
  ASSERT_OK(buffer.Flush());
  ASSERT_OK_AND_ASSIGN(const NewElement root, buffer.Result(root_ticket));
  for (int i = 0; i < 7; ++i) {
    ASSERT_OK(buffer.InsertElementBefore(root.end).status());
  }
  ASSERT_OK(buffer.Flush());
  EXPECT_EQ(metrics.CounterValue("batch.flushes"), 2u);
  EXPECT_EQ(metrics.CounterValue("batch.ops"), 8u);
}

// ---------------------------------------------------------------------------
// Checkpoint sync accounting (the double-fsync regression tests). Runs on a
// real FilePageStore so Counters::sync_calls counts actual fdatasyncs.

template <typename Scheme, typename Options>
void RunSyncAccountingTest(const std::string& tag, const Options& options) {
  const std::string path = TempDbPath(tag);
  FilePageStore store(path, kPageSize);
  ASSERT_OK(store.status());
  PageCache cache(&store);
  ASSERT_OK(InitializeSuperblock(&cache));
  Scheme scheme(&cache, options);

  ASSERT_OK_AND_ASSIGN(const NewElement root, scheme.InsertFirstElement());
  for (int i = 0; i < 20; ++i) {
    ASSERT_OK(scheme.InsertElementBefore(root.end).status());
  }

  // Building the checkpoint chain is pure page writing: zero fdatasyncs.
  const uint64_t before_checkpoint = store.counters().sync_calls;
  ASSERT_OK_AND_ASSIGN(const PageId head, scheme.Checkpoint());
  EXPECT_EQ(store.counters().sync_calls, before_checkpoint)
      << "Checkpoint() must not sync; durability is CommitCheckpoint's job";

  // A committed checkpoint is exactly two barriers: data+chain, then the
  // flipped superblock slot. (The old code paid a third inside
  // Checkpoint().)
  const uint64_t before_commit = store.counters().sync_calls;
  ASSERT_OK(CommitCheckpoint(&cache, head));
  EXPECT_EQ(store.counters().sync_calls, before_commit + 2);

  // Re-committing with nothing dirty: the data barrier has nothing to
  // persist and is skipped; only the superblock flip syncs.
  const uint64_t before_recommit = store.counters().sync_calls;
  ASSERT_OK(CommitCheckpoint(&cache, head));
  EXPECT_EQ(store.counters().sync_calls, before_recommit + 1);
}

TEST(CheckpointSyncAccountingTest, WBoxCommitsWithTwoSyncs) {
  RunSyncAccountingTest<WBox>("wbox", WBoxOptions{});
}

TEST(CheckpointSyncAccountingTest, BBoxCommitsWithTwoSyncs) {
  RunSyncAccountingTest<BBox>("bbox", BBoxOptions{});
}

TEST(CheckpointSyncAccountingTest, NaiveCommitsWithTwoSyncs) {
  RunSyncAccountingTest<NaiveScheme>(
      "naive", NaiveOptions{.gap_bits = 8, .count_bits = 30});
}

TEST(CheckpointSyncAccountingTest, MemoryStoreCountsOnlyDirtySyncs) {
  MemoryPageStore store;
  EXPECT_OK(store.Sync());
  EXPECT_EQ(store.sync_calls(), 0u) << "nothing written, nothing synced";
  ASSERT_OK_AND_ASSIGN(const PageId page, store.Allocate());
  std::vector<uint8_t> buf(store.page_size(), 0xab);
  ASSERT_OK(store.Write(page, buf.data()));
  EXPECT_OK(store.Sync());
  EXPECT_EQ(store.sync_calls(), 1u);
  EXPECT_OK(store.Sync());
  EXPECT_EQ(store.sync_calls(), 1u) << "redundant barrier must be skipped";
}

// Group commit is what the two fixes above buy: with one checkpoint commit
// per batch, fdatasyncs per op must strictly decrease as batches grow.
TEST(CheckpointSyncAccountingTest, SyncsPerOpDecreaseWithBatchSize) {
  constexpr int kOps = 64;
  double previous = 0.0;
  bool have_previous = false;
  for (const size_t batch : {size_t{1}, size_t{8}, size_t{64}}) {
    const std::string path = TempDbPath("amortize" + std::to_string(batch));
    FilePageStore store(path, kPageSize);
    ASSERT_OK(store.status());
    PageCache cache(&store);
    ASSERT_OK(InitializeSuperblock(&cache));
    WBox scheme(&cache);
    UpdateBuffer buffer(&scheme,
                        {.flush_threshold = batch, .auto_flush = false});
    buffer.SetCommitHook([&]() -> Status {
      BOXES_ASSIGN_OR_RETURN(const PageId head, scheme.Checkpoint());
      return CommitCheckpoint(&cache, head);
    });
    ASSERT_OK_AND_ASSIGN(const UpdateBuffer::Ticket root_ticket,
                         buffer.InsertFirstElement());
    ASSERT_OK(buffer.Flush());
    ASSERT_OK_AND_ASSIGN(const NewElement root, buffer.Result(root_ticket));

    const uint64_t before = store.counters().sync_calls;
    for (int op = 0; op < kOps; ++op) {
      ASSERT_OK(buffer.InsertElementBefore(root.end).status());
      if (buffer.pending() >= batch) {
        ASSERT_OK(buffer.Flush());
      }
    }
    ASSERT_OK(buffer.Flush());
    const double per_op =
        static_cast<double>(store.counters().sync_calls - before) / kOps;
    if (have_previous) {
      EXPECT_LT(per_op, previous)
          << "sync calls per op must strictly decrease with batch size "
          << batch;
    }
    previous = per_op;
    have_previous = true;
    ASSERT_OK(scheme.CheckInvariants());
  }
}

// ---------------------------------------------------------------------------
// LID stability of subtree operations under interleaved relabeling.

// Serializes the model's current shape + tag order check against `scheme`.
void ExpectMatchesModel(LabelingScheme* scheme, const ModelTree& model) {
  const std::vector<Lid> order = model.TagOrder();
  ASSERT_TRUE(LabelsStrictlyIncreasing(scheme, order));
  ASSERT_OK_AND_ASSIGN(const SchemeStats stats, scheme->GetStats());
  EXPECT_EQ(stats.live_labels, order.size());
  ASSERT_OK(scheme->CheckInvariants());
}

// naive-k with a tiny gap relabels constantly; subtree inserts (the
// element-wise default) and the generic by-LID DeleteSubtree must survive
// RelabelAll passes firing in the middle of their own loops.
TEST(LidStabilityTest, NaiveSubtreeOpsSurviveInterleavedRelabels) {
  TestDb db;
  NaiveScheme scheme(&db.cache,
                     NaiveOptions{.gap_bits = 4, .count_bits = 40});
  ModelTree model;
  Random rng(0x5eed01);

  ASSERT_OK_AND_ASSIGN(const NewElement root, scheme.InsertFirstElement());
  model.SetRoot(root);
  for (int i = 0; i < 120; ++i) {
    const int target = model.RandomElement(&rng, /*exclude_root=*/false);
    ASSERT_OK_AND_ASSIGN(
        const NewElement fresh,
        scheme.InsertElementBefore(model.node(target).lids.end));
    model.InsertAsLastChild(target, fresh);
  }
  ExpectMatchesModel(&scheme, model);

  for (int round = 0; round < 6; ++round) {
    // A 30-element subtree insert at gap_bits=4 exhausts gaps mid-insert,
    // forcing RelabelAll while the element-wise loop is still anchoring
    // later elements by LID.
    const xml::Document doc =
        xml::MakeRandomDocument(30, 4, 7000 + static_cast<uint64_t>(round));
    const int target = model.RandomElement(&rng, /*exclude_root=*/true);
    std::vector<NewElement> lids;
    ASSERT_OK(scheme.InsertSubtreeBefore(model.node(target).lids.start, doc,
                                         &lids));
    const int grafted = model.GraftBeforeStart(target, doc, lids);
    ExpectMatchesModel(&scheme, model);

    // More single inserts to shift labels again, then delete the grafted
    // subtree through the generic by-LID path.
    for (int i = 0; i < 25; ++i) {
      const int anchor = model.RandomElement(&rng, /*exclude_root=*/false);
      ASSERT_OK_AND_ASSIGN(
          const NewElement fresh,
          scheme.InsertElementBefore(model.node(anchor).lids.end));
      model.InsertAsLastChild(anchor, fresh);
    }
    const NewElement doomed = model.node(grafted).lids;
    ASSERT_OK(scheme.DeleteSubtree(doomed.start, doomed.end));
    model.DeleteSubtree(grafted);
    ExpectMatchesModel(&scheme, model);
  }
}

// The generic (base-class) DeleteSubtree on W-BOX, with the rebuild
// threshold set low enough that the per-victim Delete calls trigger a
// global rebuild — every label in the tree changes — partway through the
// victim loop. The by-LID snapshot must keep the remaining victims
// addressable; iterating by label value would delete the wrong records.
TEST(LidStabilityTest, GenericDeleteSubtreeSurvivesMidLoopGlobalRebuild) {
  TestDb db;
  WBoxOptions options;
  options.rebuild_tombstone_ratio = 0.05;
  options.min_rebuild_records = 64;
  WBox scheme(&db.cache, options);
  ModelTree model;
  Random rng(0x5eed02);

  ASSERT_OK_AND_ASSIGN(const NewElement root, scheme.InsertFirstElement());
  model.SetRoot(root);
  for (int i = 0; i < 400; ++i) {
    const int target = model.RandomElement(&rng, /*exclude_root=*/false);
    ASSERT_OK_AND_ASSIGN(
        const NewElement fresh,
        scheme.InsertElementBefore(model.node(target).lids.end));
    model.InsertAsLastChild(target, fresh);
  }

  // Deep graft: a subtree big enough that deleting it label-at-a-time
  // crosses the 5% tombstone threshold several times.
  const xml::Document doc = xml::MakeRandomDocument(60, 6, 99);
  const int target = model.RandomElement(&rng, /*exclude_root=*/true);
  std::vector<NewElement> lids;
  ASSERT_OK(scheme.InsertSubtreeBefore(model.node(target).lids.start, doc,
                                       &lids));
  const int grafted = model.GraftBeforeStart(target, doc, lids);
  ExpectMatchesModel(&scheme, model);

  const NewElement doomed = model.node(grafted).lids;
  // Call the base-class implementation explicitly: W-BOX's own override is
  // exercised elsewhere; this asserts the generic path's LID snapshot.
  ASSERT_OK(scheme.LabelingScheme::DeleteSubtree(doomed.start, doomed.end));
  model.DeleteSubtree(grafted);
  ExpectMatchesModel(&scheme, model);
}

}  // namespace
}  // namespace boxes::testing
