// Concurrent differential test (DESIGN.md §4g): drives a scheme and the
// in-memory ModelTree through a scripted update sequence while N reader
// threads record (label, epoch) observations via LookupShared. After the
// run, every observation must match the probe state of exactly the prefix
// of writes its ticket epoch names (EpochLabelOracle), per-reader epochs
// must be monotone, and at every epoch the scheme's label order over the
// probe set must equal the model tree's tag order — a linearizability-style
// check that concurrent readers only ever see committed model states.
// Labeled `concurrency` in ctest; run under TSan via tests/run_tsan.sh.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/bbox/bbox.h"
#include "core/common/epoch_guard.h"
#include "core/naive/naive.h"
#include "core/wbox/wbox.h"
#include "gtest/gtest.h"
#include "model_tree.h"
#include "storage/page_cache.h"
#include "test_util.h"
#include "util/random.h"

namespace boxes::testing {
namespace {

struct SchemeFactory {
  const char* name;
  std::unique_ptr<LabelingScheme> (*make)(PageCache* cache);
};

std::unique_ptr<LabelingScheme> MakeWbox(PageCache* cache) {
  return std::make_unique<WBox>(cache);
}
std::unique_ptr<LabelingScheme> MakeBbox(PageCache* cache) {
  return std::make_unique<BBox>(cache);
}
std::unique_ptr<LabelingScheme> MakeNaive(PageCache* cache) {
  NaiveOptions options;
  options.gap_bits = 16;
  return std::make_unique<NaiveScheme>(cache, options);
}

/// One reader-side observation, recorded without any shared state and
/// validated after the threads join.
struct Observation {
  Lid lid = kInvalidLid;
  Label label;
  uint64_t epoch = 0;
};

/// The writer's record of one committed prefix state: the scheme's probe
/// labels plus the model tree's tag-order rank of every probe.
struct EpochState {
  std::map<Lid, Label> labels;
  std::map<Lid, size_t> ranks;
};

class ConcurrentDifferentialTest
    : public ::testing::TestWithParam<SchemeFactory> {};

/// Captures the probe state of the current moment. Must run while writes
/// are excluded (under the write lock, or before readers start).
EpochState CaptureState(LabelingScheme* scheme, const ModelTree& model,
                        const std::vector<Lid>& probes) {
  EpochState state;
  for (const Lid lid : probes) {
    StatusOr<Label> label = scheme->Lookup(lid);
    EXPECT_OK(label.status());
    if (label.ok()) {
      state.labels[lid] = *label;
    }
  }
  const std::vector<Lid> order = model.TagOrder();
  for (size_t i = 0; i < order.size(); ++i) {
    state.ranks[order[i]] = i;  // non-probe lids are pruned by the check
  }
  return state;
}

TEST_P(ConcurrentDifferentialTest, ObservationsMatchModelPrefixStates) {
  TestDb db;
  std::unique_ptr<LabelingScheme> scheme = GetParam().make(&db.cache);
  ModelTree model;
  Random rng(2024);

  // Scripted pre-population, scheme and model in lockstep.
  ASSERT_OK_AND_ASSIGN(const NewElement root, scheme->InsertFirstElement());
  model.SetRoot(root);
  std::vector<int> probe_nodes;  // model index per probe
  std::vector<Lid> probes;       // the start lid readers look up
  probe_nodes.push_back(0);
  probes.push_back(root.start);
  for (int i = 0; i < 120; ++i) {
    const int target = model.RandomElement(&rng, /*exclude_root=*/false);
    ASSERT_OK_AND_ASSIGN(
        const NewElement e,
        scheme->InsertElementBefore(model.node(target).lids.end));
    const int id = model.InsertAsLastChild(target, e);
    if (i % 3 == 0) {
      probe_nodes.push_back(id);
      probes.push_back(e.start);
    }
  }

  // Per-epoch history. The writer appends under its write lock; readers
  // never touch it — observations are validated after the join.
  EpochGuard& guard = scheme->epoch_guard();
  std::map<uint64_t, EpochState> history;
  EpochLabelOracle oracle;
  history[guard.epoch()] = CaptureState(scheme.get(), model, probes);
  oracle.RecordEpoch(guard.epoch(), history[guard.epoch()].labels);

  constexpr int kReaders = 4;
  constexpr int kLookupsPerReader = 2500;
  constexpr int kWriterOps = 50;
  std::vector<std::vector<Observation>> observed(kReaders);
  std::atomic<int> readers_done{0};

  std::vector<std::thread> pool;
  for (int t = 0; t < kReaders; ++t) {
    pool.emplace_back([&, t] {
      Random reader_rng(500 + t);
      observed[t].reserve(kLookupsPerReader);
      for (int i = 0; i < kLookupsPerReader; ++i) {
        const Lid lid = probes[reader_rng.Uniform(probes.size())];
        StatusOr<VersionedLabel> got = scheme->LookupShared(lid);
        ASSERT_OK(got.status());
        observed[t].push_back(Observation{lid, got->label, got->epoch});
      }
      readers_done.fetch_add(1, std::memory_order_release);
    });
  }

  // The scripted update sequence: insert before a probe anchor, sometimes
  // delete an element inserted earlier in the script (never a probe), and
  // define the new epoch's expected state before releasing the lock.
  std::thread writer([&] {
    Random writer_rng(9);
    std::vector<std::pair<NewElement, int>> inserted;
    for (int op = 0; op < kWriterOps; ++op) {
      {
        EpochWriteLock lock(&guard);
        if (!inserted.empty() && writer_rng.Bernoulli(0.3)) {
          const auto [lids, node] = inserted.back();
          inserted.pop_back();
          ASSERT_OK(scheme->Delete(lids.start));
          ASSERT_OK(scheme->Delete(lids.end));
          model.DeleteElement(node);
        } else {
          // Anchor on any probe but the root: an element inserted before
          // the root's start would become the root's sibling, which the
          // model (and the document) cannot represent.
          const size_t slot = 1 + writer_rng.Uniform(probes.size() - 1);
          StatusOr<NewElement> fresh =
              scheme->InsertElementBefore(probes[slot]);
          ASSERT_OK(fresh.status());
          const int node =
              model.InsertBeforeStart(probe_nodes[slot], *fresh);
          inserted.emplace_back(*fresh, node);
        }
        const uint64_t next = guard.epoch() + 1;
        history[next] = CaptureState(scheme.get(), model, probes);
        oracle.RecordEpoch(next, history[next].labels);
      }
      if (readers_done.load(std::memory_order_acquire) == kReaders) {
        return;  // the scripted prefix that overlapped readers suffices
      }
      std::this_thread::yield();
    }
  });

  for (std::thread& t : pool) {
    t.join();
  }
  writer.join();

  // Every observation matches the probe state of exactly its epoch, and
  // each reader's epochs never run backwards.
  uint64_t validated = 0;
  for (int t = 0; t < kReaders; ++t) {
    uint64_t last_epoch = 0;
    for (const Observation& obs : observed[t]) {
      ASSERT_GE(obs.epoch, last_epoch) << "reader " << t;
      last_epoch = obs.epoch;
      const Status check =
          oracle.CheckObservation(obs.lid, obs.label, obs.epoch);
      ASSERT_TRUE(check.ok())
          << "reader " << t << ": " << check.ToString();
      ++validated;
    }
  }
  EXPECT_EQ(validated, uint64_t{kReaders} * kLookupsPerReader);

  // Differential half: at every committed epoch, sorting the probes by
  // their recorded scheme labels must reproduce the model tree's tag
  // order of that prefix state.
  ASSERT_EQ(history.size(), guard.epoch() + 1);
  for (const auto& [epoch, state] : history) {
    std::vector<Lid> by_label = probes;
    std::sort(by_label.begin(), by_label.end(), [&](Lid a, Lid b) {
      return state.labels.at(a) < state.labels.at(b);
    });
    std::vector<Lid> by_rank = probes;
    std::sort(by_rank.begin(), by_rank.end(), [&](Lid a, Lid b) {
      return state.ranks.at(a) < state.ranks.at(b);
    });
    EXPECT_EQ(by_label, by_rank) << "epoch " << epoch;
  }

  ASSERT_OK(scheme->CheckInvariants());
  ASSERT_TRUE(LabelsStrictlyIncreasing(scheme.get(), model.TagOrder()));
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, ConcurrentDifferentialTest,
    ::testing::Values(SchemeFactory{"wbox", &MakeWbox},
                      SchemeFactory{"bbox", &MakeBbox},
                      SchemeFactory{"naive16", &MakeNaive}),
    [](const ::testing::TestParamInfo<SchemeFactory>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace boxes::testing
