# Empty compiler generated dependencies file for cachelog_test.
# This may be replaced when dependencies are built.
