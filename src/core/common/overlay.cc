#include "core/common/overlay.h"

#include <utility>
#include <vector>

#include "util/metrics.h"

namespace boxes {

OverlayedScheme::OverlayedScheme(LabelingScheme* authority,
                                 OverlayOptions options)
    : authority_(authority),
      options_(std::move(options)),
      log_(options_.log_capacity) {
  authority_->SetUpdateListener(this);
}

OverlayedScheme::~OverlayedScheme() {
  if (authority_->update_listener() == this) {
    authority_->SetUpdateListener(nullptr);
  }
}

std::string OverlayedScheme::name() const {
  return "silo+" + authority_->name();
}

void OverlayedScheme::OnRangeShift(const Label& lo, const Label& hi,
                                   int64_t delta, bool last_component_only) {
  // The log's Replay applies shifts to the last component, which is the
  // scalar itself for single-component labels — both shift flavors reduce
  // to one entry kind here, exactly as in CachingLabelStore.
  (void)last_component_only;
  log_.AppendShift(lo, hi, delta);
}

void OverlayedScheme::OnInvalidateRange(const Label& lo, const Label& hi) {
  log_.AppendInvalidate(lo, hi);
}

void OverlayedScheme::OnOrdinalShift(uint64_t from, int64_t delta) {
  log_.AppendOrdinalShift(from, delta);
}

void OverlayedScheme::RecordDelta(Lid lid) { delta_[lid] = ++delta_clock_; }

void OverlayedScheme::RecordDelta(const NewElement& lids) {
  if (lids.start != kInvalidLid) {
    RecordDelta(lids.start);
  }
  if (lids.end != kInvalidLid) {
    RecordDelta(lids.end);
  }
}

void OverlayedScheme::MarkUnbounded() {
  unbounded_ = true;
  unbounded_clock_ = ++delta_clock_;
}

StatusOr<Label> OverlayedScheme::Lookup(Lid lid) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  SnapshotReader* reader = reader_.get();
  if (reader != nullptr && !unbounded_ && delta_.find(lid) == delta_.end()) {
    const size_t index = reader->FindIndex(lid);
    if (index != SnapshotReader::kNotFound) {
      Label value = reader->LabelAt(index);
      if (log_.Replay(base_ts_, &value) == ReplayResult::kUsable) {
        if (log_.now() == base_ts_) {
          served_base_.fetch_add(1, std::memory_order_relaxed);
        } else {
          served_repaired_.fetch_add(1, std::memory_order_relaxed);
        }
        return value;
      }
      // Invalidated range or log-window overflow: the frozen label cannot
      // be repaired, the live scheme answers.
      served_fallback_.fetch_add(1, std::memory_order_relaxed);
      return authority_->Lookup(lid);
    }
  }
  served_overlay_.fetch_add(1, std::memory_order_relaxed);
  return authority_->Lookup(lid);
}

bool OverlayedScheme::SupportsOrdinal() const {
  return authority_->SupportsOrdinal();
}

StatusOr<uint64_t> OverlayedScheme::OrdinalLookup(Lid lid) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  SnapshotReader* reader = reader_.get();
  if (reader != nullptr && reader->has_ordinals() && !unbounded_ &&
      delta_.find(lid) == delta_.end()) {
    const size_t index = reader->FindIndex(lid);
    if (index != SnapshotReader::kNotFound) {
      uint64_t ordinal = reader->OrdinalAt(index);
      if (log_.ReplayOrdinal(base_ts_, &ordinal) == ReplayResult::kUsable) {
        if (log_.now() == base_ts_) {
          served_base_.fetch_add(1, std::memory_order_relaxed);
        } else {
          served_repaired_.fetch_add(1, std::memory_order_relaxed);
        }
        return ordinal;
      }
      served_fallback_.fetch_add(1, std::memory_order_relaxed);
      return authority_->OrdinalLookup(lid);
    }
  }
  served_overlay_.fetch_add(1, std::memory_order_relaxed);
  return authority_->OrdinalLookup(lid);
}

StatusOr<NewElement> OverlayedScheme::InsertElementBefore(Lid lid) {
  BOXES_ASSIGN_OR_RETURN(const NewElement fresh,
                         authority_->InsertElementBefore(lid));
  RecordDelta(fresh);
  return fresh;
}

StatusOr<NewElement> OverlayedScheme::InsertFirstElement() {
  BOXES_ASSIGN_OR_RETURN(const NewElement fresh,
                         authority_->InsertFirstElement());
  RecordDelta(fresh);
  return fresh;
}

Status OverlayedScheme::Delete(Lid lid) {
  BOXES_RETURN_IF_ERROR(authority_->Delete(lid));
  // Tombstone: the LID may still sit in the frozen image (or be reused by
  // a later insert); the delta record routes it to the authority either
  // way.
  RecordDelta(lid);
  return Status::OK();
}

Status OverlayedScheme::BulkLoad(const xml::Document& doc,
                                 std::vector<NewElement>* lids_out) {
  std::vector<NewElement> scratch;
  std::vector<NewElement>* sink = lids_out != nullptr ? lids_out : &scratch;
  BOXES_RETURN_IF_ERROR(authority_->BulkLoad(doc, sink));
  for (const NewElement& element : *sink) {
    RecordDelta(element);
  }
  if (reader_ != nullptr) {
    // A load over a served image means the image no longer describes the
    // authority at all.
    MarkUnbounded();
  }
  return Status::OK();
}

Status OverlayedScheme::InsertSubtreeBefore(Lid before,
                                            const xml::Document& subtree,
                                            std::vector<NewElement>* lids_out) {
  std::vector<NewElement> scratch;
  std::vector<NewElement>* sink = lids_out != nullptr ? lids_out : &scratch;
  BOXES_RETURN_IF_ERROR(
      authority_->InsertSubtreeBefore(before, subtree, sink));
  for (const NewElement& element : *sink) {
    RecordDelta(element);
  }
  return Status::OK();
}

Status OverlayedScheme::DeleteSubtree(Lid root_start, Lid root_end) {
  BOXES_RETURN_IF_ERROR(authority_->DeleteSubtree(root_start, root_end));
  // The bulk path frees an unenumerated LID set; without the victim list
  // the delta map cannot tombstone them individually, so the whole base
  // image is declared stale until the next compile folds the deletion in.
  MarkUnbounded();
  return Status::OK();
}

void OverlayedScheme::HarvestBatch(const std::vector<BatchOp>& ops) {
  for (const BatchOp& op : ops) {
    switch (op.kind) {
      case BatchOp::Kind::kInsertElementBefore:
      case BatchOp::Kind::kInsertFirstElement:
        RecordDelta(op.result);
        break;
      case BatchOp::Kind::kDelete:
        // Recording a delete that did not apply (batch stopped early) is
        // harmless: a spurious delta only routes one LID to the authority.
        RecordDelta(op.anchor);
        break;
      case BatchOp::Kind::kInsertSubtreeBefore:
        if (op.subtree_lids != nullptr) {
          for (const NewElement& element : *op.subtree_lids) {
            RecordDelta(element);
          }
        } else {
          MarkUnbounded();
        }
        break;
      case BatchOp::Kind::kDeleteSubtree:
        MarkUnbounded();
        break;
    }
  }
}

Status OverlayedScheme::ApplyBatch(std::vector<BatchOp>* ops,
                                   BatchStats* stats) {
  // Forward whole batches so the authority's batch-wide optimizations
  // (W-BOX's deferred rebuild check, naive-k's relabel coalescing) engage;
  // deltas are harvested from the completed ops' results.
  const Status status = authority_->ApplyBatch(ops, stats);
  HarvestBatch(*ops);
  return status;
}

Status OverlayedScheme::ReplayBatch(std::vector<BatchOp>* ops,
                                    BatchStats* stats) {
  const Status status = authority_->ReplayBatch(ops, stats);
  HarvestBatch(*ops);
  return status;
}

Status OverlayedScheme::Restore(PageId checkpoint_head) {
  BOXES_RETURN_IF_ERROR(authority_->Restore(checkpoint_head));
  // The restored state is a different history; the served image (if any)
  // no longer corresponds to it.
  reader_.reset();
  delta_.clear();
  base_ts_ = 0;
  unbounded_ = false;
  return Status::OK();
}

Status OverlayedScheme::Recompile() {
  ScopedTimer timer(metrics(), "snapshot.compile_us");

  // Phase A — consistent cut under a read ticket: no writer can run, so
  // the log clock, the delta clock, and every extracted label describe one
  // committed state.
  std::string image;
  std::unique_ptr<SnapshotWriter> writer;
  uint64_t cut_ts = 0;
  uint64_t cut_clock = 0;
  {
    EpochReadLock lock(&epoch_guard());
    cut_ts = log_.now();
    cut_clock = delta_clock_;
    SnapshotWriterOptions writer_options;
    writer_options.source_epoch = lock.epoch();
    writer_options.fail_after_file_ops =
        options_.recompile_fail_after_file_ops;
    writer_options.write_chunk_bytes = options_.recompile_write_chunk_bytes;
    writer = std::make_unique<SnapshotWriter>(writer_options);
    StatusOr<std::string> built = writer->BuildImage(authority_);
    if (!built.ok()) {
      swap_failures_.fetch_add(1, std::memory_order_relaxed);
      return built.status();
    }
    image = std::move(*built);
  }

  // Phase B — durable publish, no locks held: mutations may land while the
  // temp file is written; they stay in the delta map (their delta clock
  // exceeds the cut) and keep routing to the authority.
  Status published = writer->Publish(image, options_.snapshot_path);
  if (!published.ok()) {
    swap_failures_.fetch_add(1, std::memory_order_relaxed);
    return published;
  }
  StatusOr<std::unique_ptr<SnapshotReader>> fresh =
      SnapshotReader::Open(options_.snapshot_path);
  if (!fresh.ok()) {
    swap_failures_.fetch_add(1, std::memory_order_relaxed);
    return fresh.status();
  }

  // Phase C — swap under the write lock; readers next admitted serve the
  // new image.
  {
    EpochWriteLock lock(&epoch_guard());
    reader_ = std::move(*fresh);
    base_ts_ = cut_ts;
    for (auto it = delta_.begin(); it != delta_.end();) {
      it = it->second <= cut_clock ? delta_.erase(it) : std::next(it);
    }
    if (unbounded_ && unbounded_clock_ <= cut_clock) {
      unbounded_ = false;
    }
  }
  recompiles_.fetch_add(1, std::memory_order_relaxed);
  if (metrics() != nullptr) {
    metrics()->IncrementCounter("snapshot.compiles");
    metrics()->RecordValue("snapshot.image_bytes", reader_->image_bytes());
    metrics()->RecordValue("snapshot.entries", reader_->entry_count());
  }
  return Status::OK();
}

OverlayServeStats OverlayedScheme::serve_stats() const {
  OverlayServeStats stats;
  stats.lookups = lookups_.load(std::memory_order_relaxed);
  stats.served_base = served_base_.load(std::memory_order_relaxed);
  stats.served_repaired = served_repaired_.load(std::memory_order_relaxed);
  stats.served_overlay = served_overlay_.load(std::memory_order_relaxed);
  stats.served_fallback = served_fallback_.load(std::memory_order_relaxed);
  stats.recompiles = recompiles_.load(std::memory_order_relaxed);
  stats.swap_failures = swap_failures_.load(std::memory_order_relaxed);
  return stats;
}

void OverlayedScheme::PublishMetrics() {
  MetricsRegistry* registry = metrics();
  if (registry == nullptr) {
    return;
  }
  const OverlayServeStats stats = serve_stats();
  registry->SetGauge("snapshot.lookups", stats.lookups);
  registry->SetGauge("snapshot.served_base", stats.served_base);
  registry->SetGauge("snapshot.served_repaired", stats.served_repaired);
  registry->SetGauge("snapshot.served_overlay", stats.served_overlay);
  registry->SetGauge("snapshot.served_fallback", stats.served_fallback);
  registry->SetGauge("snapshot.recompiles", stats.recompiles);
  registry->SetGauge("snapshot.swap_failures", stats.swap_failures);
  registry->SetGauge("snapshot.delta_entries", delta_.size());
  if (reader_ != nullptr) {
    registry->SetGauge("snapshot.image_entries", reader_->entry_count());
    registry->SetGauge("snapshot.image_bytes_now", reader_->image_bytes());
  }
}

}  // namespace boxes
