#ifndef BOXES_STORAGE_PAGE_CACHE_H_
#define BOXES_STORAGE_PAGE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "storage/io_stats.h"
#include "storage/page_store.h"
#include "util/status.h"

namespace boxes {

/// Configuration for PageCache.
struct PageCacheOptions {
  /// If false (the paper's main experimental setting), the working set is
  /// dropped at the end of every operation: a small number of memory blocks
  /// is available *within* one operation for pages that are immediately
  /// revisited, and nothing survives across operations.
  ///
  /// If true, up to `capacity_pages` frames persist across operations with
  /// LRU replacement (the paper's "with caching" remark: the root tends to
  /// stay resident).
  bool retain_across_ops = false;
  uint64_t capacity_pages = 1024;
};

/// The single point through which all structures access pages, responsible
/// for the paper's I/O accounting.
///
/// Usage: the *caller* (workload runner, example program) brackets each
/// logical operation with BeginOp()/EndOp(); structures simply call
/// GetPage/GetPageForWrite/AllocatePage/FreePage. Within an operation, the
/// first touch of a page costs one read I/O and later touches are free; at
/// EndOp every distinct dirty page costs one write I/O and (without
/// retention) the working set is dropped.
///
/// If no operation is ever begun, the cache behaves as one unbounded
/// operation: all pages stay resident and dirty data is flushed by
/// FlushAll(). This is convenient for tests that only care about
/// correctness.
class PageCache {
 public:
  explicit PageCache(PageStore* store, PageCacheOptions options = {});
  ~PageCache();

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  size_t page_size() const { return store_->page_size(); }
  PageStore* store() const { return store_; }

  /// Marks the start of a logical operation. Requires no operation active.
  void BeginOp();

  /// Flushes dirty frames (counting write I/Os), drops the working set
  /// (unless retention is enabled), and ends the operation.
  Status EndOp();

  bool op_active() const { return op_active_; }

  /// Returns a pointer to the page's bytes, valid until EndOp() (or until
  /// FreePage of the same page). Counts one read I/O if the page is not in
  /// the working set / retained cache.
  StatusOr<uint8_t*> GetPage(PageId id);

  /// Like GetPage but also marks the page dirty.
  StatusOr<uint8_t*> GetPageForWrite(PageId id);

  /// Allocates a zeroed page, resident and dirty. No read I/O is charged;
  /// the write is charged when flushed. On success `*data` points at the
  /// frame bytes.
  StatusOr<PageId> AllocatePage(uint8_t** data);

  /// Frees a page; drops its frame without writing it back.
  Status FreePage(PageId id);

  /// Flushes all dirty frames and, without retention, drops all frames.
  /// Same as EndOp but legal with no active operation.
  Status FlushAll();

  /// Cumulative I/O counters.
  const IoStats& stats() const { return stats_; }

  /// Per-phase I/O attribution (see IoPhase). Reads are charged to the
  /// phase active at the cache miss; writes to the phase that first dirtied
  /// the flushed page. Sums across phases equal stats().
  const PhaseIoTable& phase_stats() const { return phase_stats_; }
  const IoStats& phase_stats(IoPhase phase) const {
    return phase_stats_[static_cast<size_t>(phase)];
  }

  /// The phase new I/Os are currently charged to. Use ScopedPhase rather
  /// than calling SetPhase directly.
  IoPhase current_phase() const { return phase_; }

  /// Sets the active phase, returning the previous one.
  IoPhase SetPhase(IoPhase phase) {
    const IoPhase previous = phase_;
    phase_ = phase;
    return previous;
  }

  /// Resets counters (total and per-phase) to zero (frames are untouched).
  void ResetStats() {
    stats_ = IoStats();
    phase_stats_ = PhaseIoTable{};
  }

  /// Number of frames currently resident (for tests).
  size_t resident_pages() const { return frames_.size(); }

  /// The first error swallowed by an IoScope unwinding (sticky until
  /// cleared); OK if none occurred. Tests use this to observe flush
  /// failures that happen during stack unwinding.
  const Status& last_unwind_error() const { return last_unwind_error_; }
  void ClearUnwindError() { last_unwind_error_ = Status::OK(); }

  /// Records an error that could not be propagated (destructor context).
  /// Only the first error sticks.
  void RecordUnwindError(const Status& status);

 private:
  struct Frame {
    std::unique_ptr<uint8_t[]> data;
    bool dirty = false;
    bool touched_this_op = false;
    // Phase that first dirtied this frame (write-I/O attribution).
    IoPhase dirty_phase = IoPhase::kOther;
    // Position in lru_ (retained mode only).
    std::list<PageId>::iterator lru_pos;
    bool in_lru = false;
  };

  StatusOr<uint8_t*> GetInternal(PageId id, bool for_write);
  /// Evicts retained frames until at most `capacity_pages - headroom`
  /// remain (headroom = 1 makes room for an imminent insertion; 0 trims to
  /// exactly capacity).
  Status EvictIfNeeded(size_t headroom);
  Status FlushFrame(PageId id, Frame* frame);
  void Touch(PageId id, Frame* frame);
  void MarkDirty(Frame* frame);

  PageStore* store_;  // not owned
  const PageCacheOptions options_;
  std::unordered_map<PageId, Frame> frames_;
  std::list<PageId> lru_;  // front = most recent (retained mode only)
  IoStats stats_;
  PhaseIoTable phase_stats_;
  IoPhase phase_ = IoPhase::kOther;
  Status last_unwind_error_;
  bool op_active_ = false;
};

/// RAII phase guard: I/Os charged while the guard lives are attributed to
/// `phase`. Guards nest; the innermost one wins, and the previous phase is
/// restored on destruction.
class ScopedPhase {
 public:
  ScopedPhase(PageCache* cache, IoPhase phase)
      : cache_(cache), previous_(cache->SetPhase(phase)) {}
  ~ScopedPhase() { cache_->SetPhase(previous_); }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PageCache* cache_;
  const IoPhase previous_;
};

/// RAII bracket for one logical operation on a PageCache.
class IoScope {
 public:
  explicit IoScope(PageCache* cache) : cache_(cache) { cache_->BeginOp(); }
  ~IoScope() {
    if (cache_->op_active()) {
      // A destructor must not abort the process (the flush may fail while
      // unwinding an already-failing operation): the error is logged and
      // kept queryable via PageCache::last_unwind_error(). Callers that
      // need error propagation use End().
      const Status status = cache_->EndOp();
      if (!status.ok()) {
        cache_->RecordUnwindError(status);
      }
    }
  }

  IoScope(const IoScope&) = delete;
  IoScope& operator=(const IoScope&) = delete;

  /// Ends the operation early, propagating flush errors.
  Status End() { return cache_->EndOp(); }

 private:
  PageCache* cache_;
};

}  // namespace boxes

#endif  // BOXES_STORAGE_PAGE_CACHE_H_
