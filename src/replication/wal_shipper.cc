#include "replication/wal_shipper.h"

#include <chrono>
#include <cstring>
#include <map>
#include <utility>

#include "replication/frame.h"
#include "util/coding.h"
#include "util/crc32c.h"

namespace boxes::replication {

namespace {

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Re-frames already-decoded WalRecords into the canonical record stream —
// byte-identical to what EncodeWalRecordStream produced originally,
// without round-tripping the subtree XML through a parse (the scan
// already holds the serialized bytes).
std::vector<uint8_t> EncodeRecordStream(const std::vector<WalRecord>& records) {
  constexpr size_t kFixed = 8 + 1 + 8 + 8 + 4;
  std::vector<uint8_t> stream;
  std::vector<uint8_t> body;
  for (const WalRecord& record : records) {
    body.assign(kFixed + record.subtree_xml.size(), 0);
    uint8_t* p = body.data();
    EncodeFixed64(p, record.user_tag);
    p[8] = static_cast<uint8_t>(record.kind);
    EncodeFixed64(p + 9, record.anchor);
    EncodeFixed64(p + 17, record.anchor_end);
    EncodeFixed32(p + 25, static_cast<uint32_t>(record.subtree_xml.size()));
    std::memcpy(p + kFixed, record.subtree_xml.data(),
                record.subtree_xml.size());
    uint8_t frame[8];
    EncodeFixed32(frame, static_cast<uint32_t>(body.size()));
    EncodeFixed32(frame + 4, Crc32c(body.data(), body.size()));
    stream.insert(stream.end(), frame, frame + sizeof(frame));
    stream.insert(stream.end(), body.begin(), body.end());
  }
  return stream;
}

}  // namespace

WalShipper::WalShipper(WalPipeline* pipeline, PageCache* cache,
                       FaultyLink* link, MetricsRegistry* metrics)
    : pipeline_(pipeline), cache_(cache), link_(link), metrics_(metrics) {}

void WalShipper::Attach() {
  pipeline_->SetShipHook([this](uint64_t generation, uint64_t batch_id,
                                const std::vector<BatchOp>& ops) {
    Ship(generation, batch_id, ops);
  });
}

void WalShipper::Ship(uint64_t generation, uint64_t batch_id,
                      const std::vector<BatchOp>& ops) {
  std::vector<uint8_t> stream;
  if (!EncodeWalRecordStream(ops, &stream).ok()) {
    // The same encoding just succeeded inside AppendBatch; a failure here
    // is a programming error, but shipping must not take the primary down.
    ++ship_failures_;
    return;
  }
  ShipStream(generation, batch_id, static_cast<uint32_t>(ops.size()),
             std::move(stream));
}

void WalShipper::ShipStream(uint64_t generation, uint64_t batch_id,
                            uint32_t op_count, std::vector<uint8_t> stream) {
  ShipFrame frame;
  frame.fencing_token = pipeline_->fencing_token();
  frame.generation = generation;
  frame.batch_id = batch_id;
  frame.op_count = op_count;
  frame.ship_micros = NowMicros();
  frame.payload = std::move(stream);
  if (link_->Send(EncodeShipFrame(frame)).ok()) {
    ++shipped_batches_;
    if (metrics_ != nullptr) {
      metrics_->IncrementCounter("repl.shipped_batches");
    }
  } else {
    ++ship_failures_;
    if (metrics_ != nullptr) {
      metrics_->IncrementCounter("repl.ship_failures");
    }
  }
}

Status WalShipper::ReShipFrom(uint64_t from_batch) {
  BOXES_ASSIGN_OR_RETURN(const WalScan scan, ScanWal(cache_->store()));
  // Last complete attempt per id: only the final successful append of an
  // id was acknowledged (a faulted append's earlier complete copy may be
  // a subset of the acknowledged batch). The scan is (id, attempt)-sorted,
  // so the map insert order leaves the highest attempt in place.
  std::map<uint64_t, const WalBatch*> chosen;
  for (const WalBatch& batch : scan.batches) {
    if (batch.batch_id >= from_batch && batch.complete) {
      chosen[batch.batch_id] = &batch;
    }
  }
  const uint64_t next_unassigned = pipeline_->writer().next_batch_id();
  for (uint64_t id = from_batch; id < next_unassigned; ++id) {
    const auto it = chosen.find(id);
    if (it == chosen.end()) {
      return Status::FailedPrecondition(
          "catch-up from batch " + std::to_string(from_batch) +
          " impossible: batch " + std::to_string(id) +
          " has no complete copy left in the primary's log (recycled by "
          "truncation) — re-bootstrap the standby from a backup");
    }
    const WalBatch& batch = *it->second;
    ++ship_retries_;
    if (metrics_ != nullptr) {
      metrics_->IncrementCounter("repl.ship_retries");
    }
    ShipStream(batch.generation, batch.batch_id,
               static_cast<uint32_t>(batch.records.size()),
               EncodeRecordStream(batch.records));
  }
  return Status::OK();
}

}  // namespace boxes::replication
