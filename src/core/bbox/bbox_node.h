#ifndef BOXES_CORE_BBOX_BBOX_NODE_H_
#define BOXES_CORE_BBOX_BBOX_NODE_H_

#include <cstdint>

#include "lidf/lidf.h"
#include "storage/page_store.h"
#include "util/status.h"

namespace boxes {

/// Structural parameters of a B-BOX (paper §5), derived from the page size:
///   * leaves hold up to leaf_capacity LID records;
///   * internal nodes hold up to internal_capacity child entries — halved
///     when ordinal size fields are maintained (B-BOX-O);
///   * nodes (except the root) keep at least capacity / min_fill_divisor
///     entries. The paper recommends divisor 2 for insert-mostly workloads
///     and divisor 4 to obtain O(1) amortized cost under mixed
///     insertions/deletions.
struct BBoxParams {
  size_t page_size = 0;
  bool ordinal = false;
  uint32_t min_fill_divisor = 2;

  uint64_t leaf_capacity = 0;
  uint64_t internal_capacity = 0;
  size_t internal_entry_size = 0;

  static BBoxParams Derive(size_t page_size, bool ordinal,
                           uint32_t min_fill_divisor);

  uint64_t LeafMin() const { return leaf_capacity / min_fill_divisor; }
  uint64_t InternalMin() const {
    return internal_capacity / min_fill_divisor;
  }
};

/// Shared header of both node types:
///   [0]  node_type (1 = leaf, 2 = internal)
///   [1]  level (leaves = 0)
///   [2]  count (uint16)
///   [4]  unused (4 bytes)
///   [8]  parent page id (the back-link; kInvalidPageId at the root)
///   [16] payload
///
/// The back-link is the structure's defining feature: labels are never
/// stored, they are reconstructed by walking back-links to the root and
/// reporting the child ordinal taken at each step.
class BBoxNodeHeader {
 public:
  static constexpr size_t kHeaderSize = 16;
  static constexpr uint8_t kLeafType = 1;
  static constexpr uint8_t kInternalType = 2;

  explicit BBoxNodeHeader(uint8_t* data) : data_(data) {}

  uint8_t node_type() const { return data_[0]; }
  uint8_t level() const { return data_[1]; }
  uint16_t count() const;
  PageId parent() const;
  void set_parent(PageId parent);

 protected:
  void InitHeader(uint8_t type, uint8_t level);
  void set_count(uint16_t count);

  uint8_t* data_;
};

/// Leaf page: header + an ordered array of 8-byte LIDs.
class BBoxLeafView : public BBoxNodeHeader {
 public:
  BBoxLeafView(uint8_t* data, const BBoxParams* params)
      : BBoxNodeHeader(data), params_(params) {}

  void Init() { InitHeader(kLeafType, 0); }

  Lid lid(uint16_t index) const;
  void set_lid(uint16_t index, Lid lid);

  /// Index of `lid`, or -1.
  int Find(Lid lid) const;

  void InsertAt(uint16_t index, Lid lid);
  void RemoveAt(uint16_t index);
  void RemoveRange(uint16_t first, uint16_t last);

  /// Moves records [from, count) to the end of `dst`.
  void MoveSuffixTo(uint16_t from, BBoxLeafView* dst);
  /// Moves records [from, count) to the front of `dst`.
  void MoveSuffixToFront(uint16_t from, BBoxLeafView* dst);
  /// Moves the first `n` records to the end of `dst`.
  void MovePrefixTo(uint16_t n, BBoxLeafView* dst);

 private:
  const BBoxParams* params_;
};

/// Internal page: header + an ordered array of child entries
/// (child_page(8) [+ size(8) in ordinal mode]). `size` counts the records
/// below the entry, enabling ordinal lookups (paper §5, Figure 4).
class BBoxInternalView : public BBoxNodeHeader {
 public:
  BBoxInternalView(uint8_t* data, const BBoxParams* params)
      : BBoxNodeHeader(data), params_(params) {}

  void Init(uint8_t level) { InitHeader(kInternalType, level); }

  PageId child(uint16_t index) const;
  void set_child(uint16_t index, PageId page);
  /// Size fields are 0 when ordinal support is disabled.
  uint64_t size(uint16_t index) const;
  void set_size(uint16_t index, uint64_t size);

  /// Index of the entry pointing to `page`, or -1.
  int FindChild(PageId page) const;

  void InsertAt(uint16_t index, PageId child, uint64_t size);
  void RemoveAt(uint16_t index);
  void RemoveRange(uint16_t first, uint16_t last);

  void MoveSuffixTo(uint16_t from, BBoxInternalView* dst);
  void MoveSuffixToFront(uint16_t from, BBoxInternalView* dst);
  void MovePrefixTo(uint16_t n, BBoxInternalView* dst);

  /// Sum of all size fields.
  uint64_t SizeSum() const;

 private:
  uint8_t* entry_ptr(uint16_t index);
  const uint8_t* entry_ptr(uint16_t index) const;

  const BBoxParams* params_;
};

inline uint8_t BBoxNodeType(const uint8_t* data) { return data[0]; }

}  // namespace boxes

#endif  // BOXES_CORE_BBOX_BBOX_NODE_H_
