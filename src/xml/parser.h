#ifndef BOXES_XML_PARSER_H_
#define BOXES_XML_PARSER_H_

#include <string_view>

#include "util/status.h"
#include "xml/document.h"

namespace boxes::xml {

/// Parses a well-formed XML document into an element tree.
///
/// Supports the subset relevant to structural labeling: elements (with
/// attributes, which are skipped), self-closing tags, text content
/// (ignored), comments, CDATA sections, processing instructions, and a
/// DOCTYPE declaration without an internal subset. Mismatched or improperly
/// nested tags produce an error Status.
StatusOr<Document> ParseDocument(std::string_view input);

}  // namespace boxes::xml

#endif  // BOXES_XML_PARSER_H_
