#include "storage/page_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "storage/superblock_format.h"
#include "util/coding.h"
#include "util/crc32c.h"

namespace boxes {

Status PageStore::WriteTorn(PageId id, const uint8_t* buf, size_t prefix) {
  (void)id;
  (void)buf;
  (void)prefix;
  return Status::Unimplemented("store does not support torn writes");
}

MemoryPageStore::MemoryPageStore(size_t page_size) : page_size_(page_size) {
  BOXES_CHECK(page_size_ >= 64);
}

StatusOr<PageId> MemoryPageStore::Allocate() {
  PageId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
    std::memset(pages_[id].get(), 0, page_size_);
    live_[id] = true;
  } else {
    id = pages_.size();
    pages_.push_back(std::make_unique<uint8_t[]>(page_size_));
    std::memset(pages_[id].get(), 0, page_size_);
    live_.push_back(true);
  }
  ++allocated_;
  return id;
}

Status MemoryPageStore::Free(PageId id) {
  BOXES_RETURN_IF_ERROR(CheckId(id));
  live_[id] = false;
  free_list_.push_back(id);
  --allocated_;
  return Status::OK();
}

Status MemoryPageStore::Read(PageId id, uint8_t* buf) {
  BOXES_RETURN_IF_ERROR(CheckId(id));
  std::memcpy(buf, pages_[id].get(), page_size_);
  return Status::OK();
}

Status MemoryPageStore::Write(PageId id, const uint8_t* buf) {
  BOXES_RETURN_IF_ERROR(CheckId(id));
  std::memcpy(pages_[id].get(), buf, page_size_);
  dirty_since_sync_ = true;
  return Status::OK();
}

Status MemoryPageStore::WriteTorn(PageId id, const uint8_t* buf,
                                  size_t prefix) {
  BOXES_RETURN_IF_ERROR(CheckId(id));
  std::memcpy(pages_[id].get(), buf, std::min(prefix, page_size_));
  dirty_since_sync_ = true;
  return Status::OK();
}

Status MemoryPageStore::Sync() {
  if (dirty_since_sync_) {
    dirty_since_sync_ = false;
    ++sync_calls_;
  }
  return Status::OK();
}

void MemoryPageStore::SnapshotAllocator(
    uint64_t* total, std::vector<PageId>* free_pages) const {
  *total = pages_.size();
  *free_pages = free_list_;
}

Status MemoryPageStore::RestoreAllocator(
    uint64_t total, const std::vector<PageId>& free_pages) {
  if (total < pages_.size()) {
    return Status::InvalidArgument(
        "allocator snapshot is smaller than the device");
  }
  while (pages_.size() < total) {
    pages_.push_back(std::make_unique<uint8_t[]>(page_size_));
    std::memset(pages_.back().get(), 0, page_size_);
    live_.push_back(false);
  }
  live_.assign(total, true);
  for (PageId id : free_pages) {
    if (id >= total) {
      return Status::InvalidArgument("free page beyond device size");
    }
    live_[id] = false;
  }
  free_list_ = free_pages;
  allocated_ = total - free_pages.size();
  return Status::OK();
}

Status MemoryPageStore::CheckId(PageId id) const {
  if (id >= pages_.size() || !live_[id]) {
    return Status::InvalidArgument("page " + std::to_string(id) +
                                   " is not allocated");
  }
  return Status::OK();
}

LatencyPageStore::LatencyPageStore(PageStore* base,
                                   LatencyPageStoreOptions options)
    : base_(base),
      read_latency_us_(options.read_latency_us),
      write_latency_us_(options.write_latency_us) {}

Status LatencyPageStore::Read(PageId id, uint8_t* buf) {
  const uint64_t us = read_latency_us();
  if (us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
  return base_->Read(id, buf);
}

Status LatencyPageStore::Write(PageId id, const uint8_t* buf) {
  const uint64_t us = write_latency_us();
  if (us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
  return base_->Write(id, buf);
}

Status LatencyPageStore::WriteUnjournaled(PageId id, const uint8_t* buf) {
  const uint64_t us = write_latency_us();
  if (us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
  return base_->WriteUnjournaled(id, buf);
}

namespace {

// Journal record: [epoch(8) | page id(8) | physical frame | crc(4)], where
// the CRC covers everything before it. The frame is captured and restored
// verbatim — re-deriving checksums on rollback would launder a page that
// was already torn on the device into a "valid" one.
constexpr size_t kJournalHeaderSize = 16;

// Page-trailer format tag, bytes [12..15]: "BXF1".
constexpr uint32_t kFrameTag = 0x31465842u;

}  // namespace

FilePageStore::FilePageStore(const std::string& path, size_t page_size,
                             Mode mode, FilePageStoreOptions options)
    : page_size_(page_size), options_(options) {
  BOXES_CHECK(page_size_ >= 64);
  const int flags =
      mode == Mode::kTruncate ? (O_RDWR | O_CREAT | O_TRUNC) : O_RDWR;
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) {
    status_ = Status::IoError("open(" + path + "): " + std::strerror(errno));
    return;
  }
  if (options_.journal) {
    journal_path_ = path + ".journal";
    const int jflags =
        mode == Mode::kTruncate ? (O_RDWR | O_CREAT | O_TRUNC) : (O_RDWR | O_CREAT);
    journal_fd_ = ::open(journal_path_.c_str(), jflags, 0644);
    if (journal_fd_ < 0) {
      status_ = Status::IoError("open(" + journal_path_ +
                                "): " + std::strerror(errno));
      return;
    }
  }
  if (mode == Mode::kOpen) {
    // Existing pages become live; the caller narrows this with
    // RestoreAllocator from checkpointed metadata.
    const off_t size = ::lseek(fd_, 0, SEEK_END);
    if (size < 0) {
      status_ = Status::IoError(std::string("lseek: ") + std::strerror(errno));
      return;
    }
    total_pages_ = static_cast<uint64_t>(size) / frame_size();
    live_.assign(total_pages_, true);
    allocated_ = total_pages_;
    status_ = RecoverOnOpen();
    epoch_start_total_ = total_pages_;
  }
}

FilePageStore::~FilePageStore() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
  if (journal_fd_ >= 0) {
    ::close(journal_fd_);
  }
}

void FilePageStore::Count(uint64_t Counters::*field, const char* metric) {
  ++(counters_.*field);
  if (metrics_ != nullptr) {
    metrics_->IncrementCounter(metric);
  }
}

Status FilePageStore::RecoverOnOpen() {
  // Learn the current checkpoint epoch from the raw page-0 commit record.
  // This deliberately bypasses CRC verification and the cache: a torn
  // commit write leaves one slot stale-but-valid, and slot arbitration —
  // not page-level checksumming — decides what "current" means.
  if (total_pages_ > 0) {
    std::vector<uint8_t> frame(frame_size());
    BOXES_RETURN_IF_ERROR(ReadFrame(0, frame.data()));
    superblock::Slot active;
    if (superblock::PickActiveSlot(frame.data(), &active) >= 0) {
      epoch_ = active.sequence;
    }
  }
  if (journal_fd_ < 0) {
    return Status::OK();
  }
  // Roll back post-checkpoint overwrites: replay every intact pre-image
  // stamped with the current epoch, stop at the first torn/garbage record
  // (the journal's own crash frontier), then discard the journal.
  const off_t jsize = ::lseek(journal_fd_, 0, SEEK_END);
  if (jsize < 0) {
    return Status::IoError(std::string("lseek journal: ") +
                           std::strerror(errno));
  }
  const size_t record_size = kJournalHeaderSize + frame_size() + 4;
  std::vector<uint8_t> record(record_size);
  off_t offset = 0;
  while (offset + static_cast<off_t>(record_size) <=
         jsize) {
    const ssize_t n =
        ::pread(journal_fd_, record.data(), record_size, offset);
    if (n < 0) {
      return Status::IoError(std::string("pread journal: ") +
                             std::strerror(errno));
    }
    if (static_cast<size_t>(n) < record_size) {
      break;  // torn tail
    }
    const uint32_t crc = DecodeFixed32(record.data() + record_size - 4);
    if (crc != Crc32c(record.data(), record_size - 4)) {
      break;  // torn or corrupt record: everything after it is garbage
    }
    const uint64_t record_epoch = DecodeFixed64(record.data());
    const PageId id = DecodeFixed64(record.data() + 8);
    if (record_epoch == epoch_ && id < total_pages_) {
      const off_t page_offset =
          static_cast<off_t>(id) * static_cast<off_t>(frame_size());
      const ssize_t w = ::pwrite(fd_, record.data() + kJournalHeaderSize,
                                 frame_size(), page_offset);
      if (w < 0 || static_cast<size_t>(w) != frame_size()) {
        return Status::IoError(std::string("pwrite rollback: ") +
                               std::strerror(errno));
      }
      Count(&Counters::journal_rollbacks, "file_store.journal_rollbacks");
    }
    offset += static_cast<off_t>(record_size);
  }
  if (counters_.journal_rollbacks > 0 && options_.sync_data) {
    if (::fdatasync(fd_) != 0) {
      return Status::IoError(std::string("fdatasync: ") +
                             std::strerror(errno));
    }
  }
  if (::ftruncate(journal_fd_, 0) != 0) {
    return Status::IoError(std::string("ftruncate journal: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

StatusOr<PageId> FilePageStore::Allocate() {
  if (!status_.ok()) {
    return status_;
  }
  PageId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
    live_[id] = true;
  } else {
    id = total_pages_;
    ++total_pages_;
    live_.push_back(true);
  }
  // Zero the page on the device.
  std::vector<uint8_t> zeros(page_size_, 0);
  Status s = Write(id, zeros.data());
  if (!s.ok()) {
    // Roll the allocation back so the allocator stays consistent with the
    // device.
    live_[id] = false;
    if (id + 1 == total_pages_) {
      --total_pages_;
      live_.pop_back();
    } else {
      free_list_.push_back(id);
    }
    return s;
  }
  ++allocated_;
  return id;
}

Status FilePageStore::Free(PageId id) {
  BOXES_RETURN_IF_ERROR(CheckId(id));
  // A freed page may be reallocated and rewritten before the next
  // checkpoint commits; its pre-image must survive for rollback.
  BOXES_RETURN_IF_ERROR(MaybeJournal(id));
  live_[id] = false;
  free_list_.push_back(id);
  --allocated_;
  return Status::OK();
}

Status FilePageStore::ReadFrame(PageId id, uint8_t* frame) const {
  const off_t offset =
      static_cast<off_t>(id) * static_cast<off_t>(frame_size());
  const ssize_t n = ::pread(fd_, frame, frame_size(), offset);
  if (n < 0) {
    return Status::IoError(std::string("pread: ") + std::strerror(errno));
  }
  if (static_cast<size_t>(n) < frame_size()) {
    // Reading past the current EOF of a sparse file: missing bytes are zero.
    std::memset(frame + n, 0, frame_size() - static_cast<size_t>(n));
  }
  return Status::OK();
}

Status FilePageStore::Read(PageId id, uint8_t* buf) {
  BOXES_RETURN_IF_ERROR(CheckId(id));
  std::vector<uint8_t> frame(frame_size());
  BOXES_RETURN_IF_ERROR(ReadFrame(id, frame.data()));
  if (options_.verify_checksums && id != 0) {
    // An all-zero frame is a page that was allocated but never flushed
    // (sparse hole); it decodes as a zero page, which is what Allocate
    // promised. Anything else must carry a matching trailer.
    const uint8_t* trailer = frame.data() + page_size_;
    bool all_zero = true;
    for (size_t i = 0; i < frame_size(); ++i) {
      if (frame[i] != 0) {
        all_zero = false;
        break;
      }
    }
    if (!all_zero) {
      const uint64_t stored_id = DecodeFixed64(trailer);
      const uint32_t stored_crc = DecodeFixed32(trailer + 8);
      const uint32_t stored_tag = DecodeFixed32(trailer + 12);
      uint32_t expect = Crc32cExtend(0, frame.data(), page_size_);
      expect = Crc32cExtend(expect, trailer, 8);
      Count(&Counters::checksums_verified, "file_store.checksums_verified");
      if (stored_tag != kFrameTag || stored_id != id ||
          stored_crc != expect) {
        Count(&Counters::checksum_failures, "file_store.checksum_failures");
        return Status::Corruption("page " + std::to_string(id) +
                                  " failed CRC32C verification");
      }
    }
  }
  std::memcpy(buf, frame.data(), page_size_);
  return Status::OK();
}

Status FilePageStore::MaybeJournal(PageId id) {
  if (journal_fd_ < 0) {
    return Status::OK();
  }
  // Only pages that existed when the epoch began need pre-images; pages
  // allocated afterwards are invisible to the committed checkpoint.
  if (id >= epoch_start_total_ || journaled_.count(id) > 0) {
    return Status::OK();
  }
  const size_t record_size = kJournalHeaderSize + frame_size() + 4;
  std::vector<uint8_t> record(record_size);
  EncodeFixed64(record.data(), epoch_);
  EncodeFixed64(record.data() + 8, id);
  BOXES_RETURN_IF_ERROR(ReadFrame(id, record.data() + kJournalHeaderSize));
  EncodeFixed32(record.data() + record_size - 4,
                Crc32c(record.data(), record_size - 4));
  const off_t end = ::lseek(journal_fd_, 0, SEEK_END);
  if (end < 0) {
    return Status::IoError(std::string("lseek journal: ") +
                           std::strerror(errno));
  }
  const ssize_t n = ::pwrite(journal_fd_, record.data(), record_size, end);
  if (n < 0 || static_cast<size_t>(n) != record_size) {
    return Status::IoError(std::string("pwrite journal: ") +
                           std::strerror(errno));
  }
  if (options_.sync_journal && ::fdatasync(journal_fd_) != 0) {
    return Status::IoError(std::string("fdatasync journal: ") +
                           std::strerror(errno));
  }
  journaled_.insert(id);
  Count(&Counters::journal_records, "file_store.journal_records");
  return Status::OK();
}

Status FilePageStore::WriteFrameBytes(PageId id, const uint8_t* buf,
                                      size_t bytes) {
  std::vector<uint8_t> frame(frame_size());
  std::memcpy(frame.data(), buf, page_size_);
  uint8_t* trailer = frame.data() + page_size_;
  EncodeFixed64(trailer, id);
  uint32_t crc = Crc32cExtend(0, frame.data(), page_size_);
  crc = Crc32cExtend(crc, trailer, 8);
  EncodeFixed32(trailer + 8, crc);
  EncodeFixed32(trailer + 12, kFrameTag);
  Count(&Counters::checksums_computed, "file_store.checksums_computed");
  const off_t offset =
      static_cast<off_t>(id) * static_cast<off_t>(frame_size());
  const ssize_t n = ::pwrite(fd_, frame.data(), bytes, offset);
  if (n < 0 || static_cast<size_t>(n) != bytes) {
    return Status::IoError(std::string("pwrite: ") + std::strerror(errno));
  }
  dirty_since_sync_ = true;
  return Status::OK();
}

Status FilePageStore::Write(PageId id, const uint8_t* buf) {
  if (!status_.ok()) {
    return status_;
  }
  if (id >= total_pages_ || !live_[id]) {
    return Status::InvalidArgument("page " + std::to_string(id) +
                                   " is not allocated");
  }
  BOXES_RETURN_IF_ERROR(MaybeJournal(id));
  return WriteFrameBytes(id, buf, frame_size());
}

Status FilePageStore::WriteUnjournaled(PageId id, const uint8_t* buf) {
  if (!status_.ok()) {
    return status_;
  }
  if (id >= total_pages_ || !live_[id]) {
    return Status::InvalidArgument("page " + std::to_string(id) +
                                   " is not allocated");
  }
  // Deliberately no MaybeJournal: the caller vouches that no committed
  // checkpoint references this page, so crash rollback must leave its
  // newest synced content in place (op-log appends live or die by this).
  return WriteFrameBytes(id, buf, frame_size());
}

Status FilePageStore::WriteTorn(PageId id, const uint8_t* buf,
                                size_t prefix) {
  if (!status_.ok()) {
    return status_;
  }
  if (id >= total_pages_ || !live_[id]) {
    return Status::InvalidArgument("page " + std::to_string(id) +
                                   " is not allocated");
  }
  BOXES_RETURN_IF_ERROR(MaybeJournal(id));
  return WriteFrameBytes(id, buf, std::min(prefix, frame_size()));
}

Status FilePageStore::Sync() {
  if (!status_.ok()) {
    return status_;
  }
  if (!options_.sync_data) {
    return Status::OK();
  }
  if (!dirty_since_sync_) {
    // Nothing was written since the last barrier; an fdatasync here would be
    // a pure no-op at the device. Skipping it is what makes the group-commit
    // sync accounting exact (batch.sync_calls_per_flush counts real
    // barriers, not redundant ones).
    return Status::OK();
  }
  dirty_since_sync_ = false;
  Count(&Counters::sync_calls, "file_store.sync_calls");
  if (::fdatasync(fd_) != 0) {
    return Status::IoError(std::string("fdatasync: ") + std::strerror(errno));
  }
  return Status::OK();
}

Status FilePageStore::CommitEpoch(uint64_t epoch) {
  if (!status_.ok()) {
    return status_;
  }
  epoch_ = epoch;
  epoch_start_total_ = total_pages_;
  journaled_.clear();
  if (journal_fd_ >= 0) {
    if (::ftruncate(journal_fd_, 0) != 0) {
      return Status::IoError(std::string("ftruncate journal: ") +
                             std::strerror(errno));
    }
  }
  return Status::OK();
}

void FilePageStore::SnapshotAllocator(
    uint64_t* total, std::vector<PageId>* free_pages) const {
  *total = total_pages_;
  *free_pages = free_list_;
}

Status FilePageStore::RestoreAllocator(
    uint64_t total, const std::vector<PageId>& free_pages) {
  if (total < total_pages_) {
    return Status::InvalidArgument(
        "allocator snapshot is smaller than the device");
  }
  total_pages_ = total;
  live_.assign(total, true);
  for (PageId id : free_pages) {
    if (id >= total) {
      return Status::InvalidArgument("free page beyond device size");
    }
    live_[id] = false;
  }
  free_list_ = free_pages;
  allocated_ = total - free_pages.size();
  return Status::OK();
}

Status FilePageStore::CheckId(PageId id) const {
  if (!status_.ok()) {
    return status_;
  }
  if (id >= total_pages_ || !live_[id]) {
    return Status::InvalidArgument("page " + std::to_string(id) +
                                   " is not allocated");
  }
  return Status::OK();
}

FaultInjectionPageStore::FaultInjectionPageStore(PageStore* base)
    : base_(base), rng_(0xb0e5u) {}

size_t FaultInjectionPageStore::TornPrefix() {
  // The tear always cuts off before the trailer's checksum would land
  // (trailers are written last, like the tail sectors of a real page
  // write), so a torn frame can never masquerade as a complete one.
  const size_t limit = base_->page_size() + 8;
  return 1 + rng_.Uniform(limit);
}

Status FaultInjectionPageStore::MaybeFail() {
  ++ops_seen_;
  if (crashed_ || permanent_failure_) {
    ++faults_injected_;
    return crashed_ ? Status::IoError("simulated crash")
                    : Status::IoError("injected fault");
  }
  if (fail_after_ops_ != UINT64_MAX) {
    if (fail_after_ops_ == 0) {
      ++faults_injected_;
      return Status::IoError("injected fault");
    }
    --fail_after_ops_;
  }
  if (fail_probability_ > 0.0 && rng_.Bernoulli(fail_probability_)) {
    ++faults_injected_;
    if (!transient_) {
      permanent_failure_ = true;
    }
    return Status::IoError("injected fault");
  }
  return Status::OK();
}

StatusOr<PageId> FaultInjectionPageStore::Allocate() {
  std::lock_guard<std::mutex> lock(mu_);
  BOXES_RETURN_IF_ERROR(MaybeFail());
  return base_->Allocate();
}

Status FaultInjectionPageStore::Free(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  BOXES_RETURN_IF_ERROR(MaybeFail());
  return base_->Free(id);
}

Status FaultInjectionPageStore::Read(PageId id, uint8_t* buf) {
  std::lock_guard<std::mutex> lock(mu_);
  BOXES_RETURN_IF_ERROR(MaybeFail());
  if (poisoned_.count(id) > 0) {
    ++faults_injected_;
    return Status::Corruption("poisoned page " + std::to_string(id));
  }
  return base_->Read(id, buf);
}

Status FaultInjectionPageStore::WriteImpl(PageId id, const uint8_t* buf,
                                          bool journaled) {
  // Crash-point mode: the Nth *committed* write is the crash frontier —
  // optionally torn, never completed — and the disk is frozen from then
  // on. Probabilistic faults compose but yield precedence: a write they
  // eat never reached the device, so it does not advance the crash
  // countdown, and after the freeze they stop tearing pages (the
  // post-crash image must stay bit-stable for recovery to examine).
  // Unjournaled writes (op-log appends) share the countdown: they are
  // first-class crash points.
  if (!crashed_ && crash_after_writes_ != UINT64_MAX &&
      writes_until_crash_ == 0) {
    crashed_ = true;
    ++ops_seen_;
    ++faults_injected_;
    if (torn_writes_) {
      (void)base_->WriteTorn(id, buf, TornPrefix());
    }
    return Status::IoError("simulated crash");
  }
  const Status fault = MaybeFail();
  if (!fault.ok()) {
    if (torn_writes_ && !crashed_) {
      (void)base_->WriteTorn(id, buf, TornPrefix());
    }
    return fault;
  }
  if (crash_after_writes_ != UINT64_MAX) {
    --writes_until_crash_;
  }
  BOXES_RETURN_IF_ERROR(journaled ? base_->Write(id, buf)
                                  : base_->WriteUnjournaled(id, buf));
  ++writes_committed_;
  return Status::OK();
}

Status FaultInjectionPageStore::Write(PageId id, const uint8_t* buf) {
  std::lock_guard<std::mutex> lock(mu_);
  return WriteImpl(id, buf, /*journaled=*/true);
}

Status FaultInjectionPageStore::WriteUnjournaled(PageId id,
                                                 const uint8_t* buf) {
  std::lock_guard<std::mutex> lock(mu_);
  return WriteImpl(id, buf, /*journaled=*/false);
}

Status FaultInjectionPageStore::WriteTorn(PageId id, const uint8_t* buf,
                                          size_t prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  BOXES_RETURN_IF_ERROR(MaybeFail());
  return base_->WriteTorn(id, buf, prefix);
}

Status FaultInjectionPageStore::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  ++syncs_seen_;
  // The deterministic sync countdown fires before the generic machinery so
  // tests can target "the Nth barrier" exactly, independent of how many
  // reads/writes happened in between.
  if (sync_fail_budget_ > 0) {
    if (sync_fails_after_ > 0) {
      --sync_fails_after_;
    } else {
      --sync_fail_budget_;
      ++faults_injected_;
      return Status::IoError("injected sync fault");
    }
  }
  BOXES_RETURN_IF_ERROR(MaybeFail());
  return base_->Sync();
}

Status FaultInjectionPageStore::CommitEpoch(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  // Epoch bookkeeping is not an I/O edge; after a crash it must not
  // touch the frozen image, but it also must not fail bookkeeping-only
  // callers.
  if (crashed_ || permanent_failure_) {
    return Status::IoError(crashed_ ? "simulated crash" : "injected fault");
  }
  return base_->CommitEpoch(epoch);
}

}  // namespace boxes
