#include "util/flags.h"

#include <vector>

#include "gtest/gtest.h"

namespace boxes {
namespace {

/// Builds a mutable argv from string literals.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    for (auto& s : storage_) {
      pointers_.push_back(s.data());
    }
  }
  int argc() const { return static_cast<int>(pointers_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> pointers_;
};

TEST(FlagsTest, DefaultsApplyWithoutArgs) {
  FlagParser parser;
  int64_t* n = parser.AddInt64("n", 42, "count");
  bool* verbose = parser.AddBool("verbose", false, "chatty");
  Argv args({"prog"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()));
  EXPECT_EQ(*n, 42);
  EXPECT_FALSE(*verbose);
}

TEST(FlagsTest, EqualsAndSpaceSyntax) {
  FlagParser parser;
  int64_t* n = parser.AddInt64("n", 0, "count");
  std::string* name = parser.AddString("name", "", "who");
  Argv args({"prog", "--n=7", "--name", "alice"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()));
  EXPECT_EQ(*n, 7);
  EXPECT_EQ(*name, "alice");
}

TEST(FlagsTest, BareBooleanFlag) {
  FlagParser parser;
  bool* verbose = parser.AddBool("verbose", false, "chatty");
  Argv args({"prog", "--verbose"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()));
  EXPECT_TRUE(*verbose);
}

TEST(FlagsTest, DoubleParsing) {
  FlagParser parser;
  double* ratio = parser.AddDouble("ratio", 0.5, "fraction");
  Argv args({"prog", "--ratio=0.75"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()));
  EXPECT_DOUBLE_EQ(*ratio, 0.75);
}

TEST(FlagsTest, UnknownFlagFails) {
  FlagParser parser;
  parser.AddInt64("n", 0, "count");
  Argv args({"prog", "--bogus=1"});
  EXPECT_FALSE(parser.Parse(args.argc(), args.argv()));
}

TEST(FlagsTest, MalformedIntegerFails) {
  FlagParser parser;
  parser.AddInt64("n", 0, "count");
  Argv args({"prog", "--n=notanumber"});
  EXPECT_FALSE(parser.Parse(args.argc(), args.argv()));
}

TEST(FlagsTest, MalformedBoolFails) {
  FlagParser parser;
  parser.AddBool("b", false, "flag");
  Argv args({"prog", "--b=maybe"});
  EXPECT_FALSE(parser.Parse(args.argc(), args.argv()));
}

TEST(FlagsTest, HelpReturnsFalseAndListsFlags) {
  FlagParser parser;
  parser.AddInt64("iterations", 10, "how many times");
  Argv args({"prog", "--help"});
  EXPECT_FALSE(parser.Parse(args.argc(), args.argv()));
  EXPECT_NE(parser.Usage("prog").find("iterations"), std::string::npos);
}

TEST(FlagsTest, NegativeIntegers) {
  FlagParser parser;
  int64_t* n = parser.AddInt64("n", 0, "count");
  Argv args({"prog", "--n=-12"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()));
  EXPECT_EQ(*n, -12);
}

}  // namespace
}  // namespace boxes
