# Empty compiler generated dependencies file for writer_edge_test.
# This may be replaced when dependencies are built.
