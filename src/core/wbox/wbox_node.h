#ifndef BOXES_CORE_WBOX_WBOX_NODE_H_
#define BOXES_CORE_WBOX_WBOX_NODE_H_

#include <cstdint>

#include "lidf/lidf.h"
#include "storage/page_store.h"
#include "util/status.h"

namespace boxes {

/// Structural parameters of a W-BOX, derived from the page size and the
/// chosen leaf-record format (paper §4):
///   * leaf parameter k: 2k-1 is the maximum number of leaf records a block
///     holds, and also the length of the label range assigned to a leaf;
///   * branching parameter a = b/2 - 2 where b is the maximum internal
///     fan-out dictated by the block size;
///   * a node at level i (leaves = level 0) must keep weight < 2·a^i·k and,
///     unless it is the root, weight > a^i·k - 2·a^(i-1)·k;
///   * the range of a node at level i spans (2k-1)·b^i label values and is
///     divided into b equal subranges for its children.
struct WBoxParams {
  size_t page_size = 0;
  bool pair_mode = false;  // W-BOX-O leaf records

  size_t leaf_record_size = 0;
  uint64_t leaf_capacity = 0;  // = 2k - 1, always odd
  uint64_t k = 0;

  uint64_t b = 0;  // maximum internal fan-out
  uint64_t a = 0;  // branching parameter

  /// Computes all derived values. Requires a resulting a >= 10.
  static WBoxParams Derive(size_t page_size, bool pair_mode);

  /// Maximum permitted weight (exclusive bound is 2a^i k; a node must stay
  /// strictly below this).
  uint64_t MaxWeight(uint32_t level) const;
  /// Minimum permitted weight for a non-root node (exclusive lower bound
  /// a^i k - 2 a^(i-1) k; level >= 1; for leaves uses k - 2k/a).
  uint64_t MinWeightExclusive(uint32_t level) const;
  /// Length of the label range owned by a node at `level`.
  uint64_t RangeLength(uint32_t level) const;
};

/// W-BOX leaf page layout:
///   [0]   node_type (1 = leaf)
///   [1]   unused
///   [2]   count (uint16): records including tombstones (= the leaf weight)
///   [4]   live_count (uint16): records excluding tombstones
///   [6]   unused (2 bytes)
///   [8]   range_lo (uint64): first label value of the leaf's range
///   [16]  records
///
/// Record layout (basic, 9 bytes):      lid(8) flags(1)
/// Record layout (pair mode, 25 bytes): lid(8) flags(1) partner_block(8)
///                                      cached_end(8)
/// flags: bit0 = tombstone, bit1 = is_end_label.
///
/// Labels are implicit (within-leaf ordinal): the record at index i has
/// label range_lo + i. Tombstones occupy label slots, so labels do not
/// change on deletion.
class WBoxLeafView {
 public:
  static constexpr uint8_t kNodeType = 1;
  static constexpr size_t kHeaderSize = 16;
  static constexpr uint8_t kFlagTombstone = 1;
  static constexpr uint8_t kFlagIsEnd = 2;

  WBoxLeafView(uint8_t* data, const WBoxParams* params)
      : data_(data), params_(params) {}

  void Init();

  uint8_t node_type() const { return data_[0]; }
  uint16_t count() const;
  uint16_t live_count() const;
  uint64_t range_lo() const;
  void set_range_lo(uint64_t lo);

  Lid lid(uint16_t index) const;
  uint8_t flags(uint16_t index) const;
  bool is_tombstone(uint16_t index) const {
    return (flags(index) & kFlagTombstone) != 0;
  }
  bool is_end_label(uint16_t index) const {
    return (flags(index) & kFlagIsEnd) != 0;
  }
  /// Pair-mode fields; require params->pair_mode.
  PageId partner_block(uint16_t index) const;
  uint64_t cached_end(uint16_t index) const;
  void set_partner_block(uint16_t index, PageId block);
  void set_cached_end(uint16_t index, uint64_t value);

  /// The label of the record at `index`.
  uint64_t LabelAt(uint16_t index) const { return range_lo() + index; }

  /// Index of the live record with the given LID, or -1.
  int FindLive(Lid lid) const;
  /// Index of the first tombstone, or -1.
  int FindTombstone() const;

  /// Inserts a record at `index`, shifting subsequent records right.
  /// Requires count() < leaf capacity.
  void InsertRecordAt(uint16_t index, Lid lid, uint8_t flags);
  /// Removes the record at `index`, shifting subsequent records left.
  void RemoveRecordAt(uint16_t index);
  /// Removes records [first, last] inclusive.
  void RemoveRecordRange(uint16_t first, uint16_t last);
  /// Sets/clears the tombstone flag, maintaining live_count.
  void SetTombstone(uint16_t index, bool tombstone);

  /// Moves records [from, count) into `dst` (appended at dst's end),
  /// preserving order, and truncates this leaf.
  void MoveSuffixTo(uint16_t from, WBoxLeafView* dst);

  /// Moves records [from, count) to the FRONT of `dst` (before its existing
  /// records), truncating this leaf. Used when `dst` is the right sibling.
  void MoveSuffixToFront(uint16_t from, WBoxLeafView* dst);

  /// Moves the first `n` records to the END of `dst`, shifting the
  /// remainder of this leaf down. Used when `dst` is the left sibling.
  void MovePrefixTo(uint16_t n, WBoxLeafView* dst);

  uint8_t* record_ptr(uint16_t index);
  const uint8_t* record_ptr(uint16_t index) const;

 private:
  void set_count(uint16_t value);
  void set_live_count(uint16_t value);

  uint8_t* data_;
  const WBoxParams* params_;
};

/// W-BOX internal node page layout:
///   [0]   node_type (2 = internal)
///   [1]   level (>= 1)
///   [2]   count (uint16): number of child entries
///   [4]   unused (4 bytes)
///   [8]   range_lo (uint64)
///   [16]  self_weight (uint64): total records (incl. tombstones) below
///   [24]  entries
///
/// Entry layout (26 bytes): child_page(8) weight(8) size(8) subrange(2).
/// `size` counts live records below the entry (ordinal support); `subrange`
/// is the index (0..b-1) of the equal subrange of this node's range that
/// the child occupies. Entries are ordered by subrange.
class WBoxInternalView {
 public:
  static constexpr uint8_t kNodeType = 2;
  static constexpr size_t kHeaderSize = 24;
  static constexpr size_t kEntrySize = 26;

  WBoxInternalView(uint8_t* data, const WBoxParams* params)
      : data_(data), params_(params) {}

  void Init(uint8_t level);

  uint8_t node_type() const { return data_[0]; }
  uint8_t level() const { return data_[1]; }
  uint16_t count() const;
  uint64_t range_lo() const;
  void set_range_lo(uint64_t lo);
  uint64_t self_weight() const;
  void set_self_weight(uint64_t w);

  PageId child(uint16_t index) const;
  uint64_t weight(uint16_t index) const;
  uint64_t size(uint16_t index) const;
  uint16_t subrange(uint16_t index) const;
  void set_child(uint16_t index, PageId page);
  void set_weight(uint16_t index, uint64_t weight);
  void set_size(uint16_t index, uint64_t size);
  void set_subrange(uint16_t index, uint16_t subrange);

  /// Label range start of the child at `index`.
  uint64_t ChildRangeLo(uint16_t index) const;

  /// Index of the entry whose subrange contains `label`; -1 if the label
  /// falls in an unassigned subrange (a structural corruption for labels
  /// that exist).
  int FindChildByLabel(uint64_t label) const;

  /// Index of the entry pointing to `page`, or -1.
  int FindChildByPage(PageId page) const;

  /// True iff no entry occupies `subrange`.
  bool SubrangeFree(uint16_t subrange) const;

  /// Inserts an entry at `index`, shifting subsequent entries right.
  void InsertEntryAt(uint16_t index, PageId child, uint64_t weight,
                     uint64_t size, uint16_t subrange);
  /// Removes the entry at `index`.
  void RemoveEntryAt(uint16_t index);
  /// Removes entries [first, last] inclusive.
  void RemoveEntryRange(uint16_t first, uint16_t last);

  /// Moves entries [from, count) to `dst` (appended), truncating here.
  void MoveSuffixTo(uint16_t from, WBoxInternalView* dst);

 private:
  void set_count(uint16_t value);
  uint8_t* entry_ptr(uint16_t index);
  const uint8_t* entry_ptr(uint16_t index) const;

  uint8_t* data_;
  const WBoxParams* params_;
};

/// Reads the node type byte of a raw page.
inline uint8_t WBoxNodeType(const uint8_t* data) { return data[0]; }

}  // namespace boxes

#endif  // BOXES_CORE_WBOX_WBOX_NODE_H_
