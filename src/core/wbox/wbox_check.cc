#include <functional>
#include <string>
#include <vector>

#include "core/wbox/wbox.h"

namespace boxes {

namespace {

constexpr uint8_t kFlagPaired = 4;  // mirrors wbox.cc

Status Fail(const std::string& what, PageId page) {
  return Status::Corruption("W-BOX invariant violated at page " +
                            std::to_string(page) + ": " + what);
}

}  // namespace

/// Exhaustively verifies the structural invariants of §4: node layout,
/// weight constraints, range/subrange consistency, LIDF back-pointers,
/// size-field sums, and pair-cache coherence (W-BOX-O).
Status WBox::CheckInvariants() {
  if (root_ == kInvalidPageId) {
    if (height_ != 0 || live_labels_ != 0 || tombstones_ != 0) {
      return Status::Corruption("empty W-BOX has nonzero counters");
    }
    return Status::OK();
  }
  if (height_ == 0) {
    return Status::Corruption("non-empty W-BOX has zero height");
  }

  struct Totals {
    uint64_t weight = 0;
    uint64_t live = 0;
  };

  // Recursive verification via an explicit lambda.
  std::function<Status(PageId, uint32_t, uint64_t, bool, Totals*)> check =
      [&](PageId page, uint32_t level, uint64_t expected_lo, bool is_root,
          Totals* totals) -> Status {
    BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(page));
    if (level == 0) {
      WBoxLeafView leaf(data, &params_);
      if (leaf.node_type() != WBoxLeafView::kNodeType) {
        return Fail("expected a leaf node", page);
      }
      if (leaf.range_lo() != expected_lo) {
        return Fail("leaf range_lo mismatch", page);
      }
      const uint16_t n = leaf.count();
      if (n > params_.leaf_capacity) {
        return Fail("leaf over capacity", page);
      }
      if (n == 0 && !is_root) {
        return Fail("empty non-root leaf", page);
      }
      if (!is_root) {
        if (n <= params_.MinWeightExclusive(0)) {
          return Fail("leaf under minimum weight", page);
        }
        if (n >= params_.MaxWeight(0)) {
          return Fail("leaf over maximum weight", page);
        }
      }
      uint16_t live = 0;
      for (uint16_t i = 0; i < n; ++i) {
        if (leaf.is_tombstone(i)) {
          continue;
        }
        ++live;
        const Lid lid = leaf.lid(i);
        if (!lidf_.IsLive(lid)) {
          return Fail("record LID " + std::to_string(lid) + " not live",
                      page);
        }
        BOXES_ASSIGN_OR_RETURN(const PageId back, lidf_.ReadBlockPtr(lid));
        if (back != page) {
          return Fail("LIDF back-pointer of LID " + std::to_string(lid) +
                          " does not point here",
                      page);
        }
        if (params_.pair_mode && (leaf.flags(i) & kFlagPaired) != 0) {
          const Lid partner_lid =
              leaf.is_end_label(i) ? lid - 1 : lid + 1;
          const PageId partner_page = leaf.partner_block(i);
          BOXES_ASSIGN_OR_RETURN(uint8_t* partner_data,
                                 cache_->GetPage(partner_page));
          WBoxLeafView partner(partner_data, &params_);
          const int slot = partner.FindLive(partner_lid);
          if (slot < 0) {
            return Fail("pair partner of LID " + std::to_string(lid) +
                            " missing",
                        page);
          }
          if (!leaf.is_end_label(i)) {
            // Re-establish this leaf's view (aliasing-safe: frames stable).
            if (leaf.cached_end(i) !=
                partner.LabelAt(static_cast<uint16_t>(slot))) {
              return Fail("stale cached end value for LID " +
                              std::to_string(lid),
                          page);
            }
          }
        }
      }
      if (live != leaf.live_count()) {
        return Fail("leaf live_count mismatch", page);
      }
      totals->weight = n;
      totals->live = live;
      return Status::OK();
    }

    WBoxInternalView node(data, &params_);
    if (node.node_type() != WBoxInternalView::kNodeType) {
      return Fail("expected an internal node", page);
    }
    if (node.level() != level) {
      return Fail("level byte mismatch", page);
    }
    if (node.range_lo() != expected_lo) {
      return Fail("internal range_lo mismatch", page);
    }
    const uint16_t n = node.count();
    if (n == 0 || (is_root && n < 2)) {
      return Fail("internal node under-fanned", page);
    }
    if (n > params_.b) {
      return Fail("internal node over maximum fan-out", page);
    }
    const uint64_t child_len = params_.RangeLength(level - 1);
    uint64_t weight_sum = 0;
    uint64_t live_sum = 0;
    // Copy the entry table before recursing: GetPage pointers may alias.
    struct Entry {
      PageId child;
      uint64_t weight;
      uint64_t size;
      uint16_t subrange;
    };
    std::vector<Entry> entries;
    entries.reserve(n);
    for (uint16_t i = 0; i < n; ++i) {
      entries.push_back(
          {node.child(i), node.weight(i), node.size(i), node.subrange(i)});
    }
    const uint64_t self_weight = node.self_weight();
    const uint64_t node_lo = node.range_lo();
    for (uint16_t i = 0; i < n; ++i) {
      if (entries[i].subrange >= params_.b) {
        return Fail("subrange out of bounds", page);
      }
      if (i > 0 && entries[i].subrange <= entries[i - 1].subrange) {
        return Fail("subranges not strictly increasing", page);
      }
      Totals child_totals;
      BOXES_RETURN_IF_ERROR(check(entries[i].child, level - 1,
                                  node_lo + entries[i].subrange * child_len,
                                  /*is_root=*/false, &child_totals));
      if (child_totals.weight != entries[i].weight) {
        return Fail("entry weight does not match child subtree", page);
      }
      if (options_.maintain_ordinal &&
          child_totals.live != entries[i].size) {
        return Fail("entry size does not match child live count", page);
      }
      weight_sum += child_totals.weight;
      live_sum += child_totals.live;
    }
    if (weight_sum != self_weight) {
      return Fail("self_weight does not equal entry sum", page);
    }
    if (!is_root) {
      if (self_weight <= params_.MinWeightExclusive(level)) {
        return Fail("internal node under minimum weight", page);
      }
    }
    if (self_weight >= params_.MaxWeight(level)) {
      return Fail("internal node over maximum weight", page);
    }
    totals->weight = weight_sum;
    totals->live = live_sum;
    return Status::OK();
  };

  Totals totals;
  BOXES_RETURN_IF_ERROR(
      check(root_, height_ - 1, 0, /*is_root=*/true, &totals));
  if (totals.weight != live_labels_ + tombstones_) {
    return Status::Corruption("total weight does not match counters");
  }
  if (totals.live != live_labels_) {
    return Status::Corruption("total live count does not match counters");
  }
  if (lidf_.live_records() != live_labels_) {
    return Status::Corruption("LIDF live record count mismatch");
  }
  return Status::OK();
}

}  // namespace boxes
