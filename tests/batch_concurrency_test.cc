// Concurrent readers vs the group-commit write pipeline (DESIGN.md §4h):
// a writer pushes multi-op batches through an UpdateBuffer while reader
// threads record (label, epoch) observations via LookupShared. Because a
// flushed batch is ONE write epoch, the only states a reader may observe
// are batch boundaries: the oracle records exactly one probe snapshot per
// flush (inside the post-apply hook, while readers are still locked out),
// and CheckObservation rejects any epoch it never recorded — which is
// precisely what a half-applied batch would look like. Labeled
// `concurrency` in ctest; runs under TSan via tests/run_tsan.sh.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/bbox/bbox.h"
#include "core/common/epoch_guard.h"
#include "core/common/update_buffer.h"
#include "core/naive/naive.h"
#include "core/wbox/wbox.h"
#include "gtest/gtest.h"
#include "model_tree.h"
#include "storage/page_cache.h"
#include "test_util.h"
#include "util/random.h"

namespace boxes::testing {
namespace {

struct SchemeFactory {
  const char* name;
  std::unique_ptr<LabelingScheme> (*make)(PageCache* cache);
};

std::unique_ptr<LabelingScheme> MakeWbox(PageCache* cache) {
  return std::make_unique<WBox>(cache);
}
std::unique_ptr<LabelingScheme> MakeBbox(PageCache* cache) {
  return std::make_unique<BBox>(cache);
}
std::unique_ptr<LabelingScheme> MakeNaive(PageCache* cache) {
  NaiveOptions options;
  options.gap_bits = 16;
  return std::make_unique<NaiveScheme>(cache, options);
}

struct Observation {
  Lid lid = kInvalidLid;
  Label label;
  uint64_t epoch = 0;
};

class BatchConcurrencyTest : public ::testing::TestWithParam<SchemeFactory> {
};

TEST_P(BatchConcurrencyTest, ReadersNeverObserveHalfAppliedBatches) {
  TestDb db;
  std::unique_ptr<LabelingScheme> scheme = GetParam().make(&db.cache);
  ModelTree model;
  Random rng(0xba7c4);

  // Pre-populate, scheme and model in lockstep (single-threaded).
  ASSERT_OK_AND_ASSIGN(const NewElement root, scheme->InsertFirstElement());
  model.SetRoot(root);
  std::vector<int> probe_nodes{0};
  std::vector<Lid> probes{root.start};
  for (int i = 0; i < 120; ++i) {
    const int target = model.RandomElement(&rng, /*exclude_root=*/false);
    ASSERT_OK_AND_ASSIGN(
        const NewElement e,
        scheme->InsertElementBefore(model.node(target).lids.end));
    const int id = model.InsertAsLastChild(target, e);
    if (i % 3 == 0) {
      probe_nodes.push_back(id);
      probes.push_back(e.start);
    }
  }

  EpochGuard& guard = scheme->epoch_guard();
  EpochLabelOracle oracle;
  auto capture = [&]() {
    std::map<Lid, Label> labels;
    for (const Lid lid : probes) {
      StatusOr<Label> label = scheme->Lookup(lid);
      EXPECT_OK(label.status());
      if (label.ok()) {
        labels[lid] = *label;
      }
    }
    return labels;
  };
  oracle.RecordEpoch(guard.epoch(), capture());

  constexpr int kReaders = 4;
  constexpr int kLookupsPerReader = 2500;
  constexpr int kWriterBatches = 40;
  constexpr size_t kOpsPerBatch = 8;
  std::vector<std::vector<Observation>> observed(kReaders);
  std::atomic<int> readers_done{0};

  std::vector<std::thread> pool;
  for (int t = 0; t < kReaders; ++t) {
    pool.emplace_back([&, t] {
      Random reader_rng(700 + t);
      observed[t].reserve(kLookupsPerReader);
      for (int i = 0; i < kLookupsPerReader; ++i) {
        const Lid lid = probes[reader_rng.Uniform(probes.size())];
        StatusOr<VersionedLabel> got = scheme->LookupShared(lid);
        ASSERT_OK(got.status());
        observed[t].push_back(Observation{lid, got->label, got->epoch});
      }
      readers_done.fetch_add(1, std::memory_order_release);
    });
  }

  // The writer: each iteration assembles one batch of kOpsPerBatch ops —
  // inserts before distinct probes, deletes of elements inserted in
  // earlier batches — and flushes it as one epoch. The post-apply hook
  // replays the batch into the model and records the new boundary state
  // while the write lock still excludes readers.
  uint64_t batches = 0;
  std::thread writer([&] {
    Random writer_rng(31);
    // Elements inserted by earlier batches, available for deletion.
    std::vector<std::pair<UpdateBuffer::Ticket, int>> planned_inserts;
    std::vector<std::pair<NewElement, int>> deletable;
    std::vector<std::pair<NewElement, int>> planned_deletes;
    UpdateBuffer buffer(scheme.get(), {.flush_threshold = kOpsPerBatch,
                                       .auto_flush = false});
    buffer.SetPostApplyHook([&](uint64_t epoch) -> Status {
      for (const auto& [ticket, slot] : planned_inserts) {
        BOXES_ASSIGN_OR_RETURN(const NewElement fresh,
                               buffer.Result(ticket));
        const int node = model.InsertBeforeStart(probe_nodes[slot], fresh);
        deletable.emplace_back(fresh, node);
      }
      for (const auto& [lids, node] : planned_deletes) {
        (void)lids;
        model.DeleteElement(node);
      }
      oracle.RecordEpoch(epoch, capture());
      return Status::OK();
    });
    for (int b = 0; b < kWriterBatches; ++b) {
      planned_inserts.clear();
      planned_deletes.clear();
      // Distinct probe slots per batch: anchors never collide, and every
      // anchor is alive at batch start (probes are never deleted).
      std::vector<size_t> slots;
      for (size_t s = 1; s < probes.size(); ++s) {
        slots.push_back(s);
      }
      for (size_t i = 0; i < kOpsPerBatch; ++i) {
        if (!deletable.empty() && writer_rng.Bernoulli(0.3)) {
          const auto victim = deletable.back();
          deletable.pop_back();
          ASSERT_OK(buffer.Delete(victim.first.start).status());
          ASSERT_OK(buffer.Delete(victim.first.end).status());
          planned_deletes.push_back(victim);
        } else {
          const size_t pick = writer_rng.Uniform(slots.size());
          const size_t slot = slots[pick];
          slots.erase(slots.begin() + static_cast<ptrdiff_t>(pick));
          ASSERT_OK_AND_ASSIGN(
              const UpdateBuffer::Ticket ticket,
              buffer.InsertElementBefore(probes[slot]));
          planned_inserts.emplace_back(ticket, static_cast<int>(slot));
        }
      }
      ASSERT_OK(buffer.Flush());
      ++batches;
      if (readers_done.load(std::memory_order_acquire) == kReaders) {
        return;
      }
      std::this_thread::yield();
    }
  });

  for (std::thread& t : pool) {
    t.join();
  }
  writer.join();

  // One committed epoch per flushed batch — the whole point of group
  // commit — and one oracle snapshot per boundary.
  EXPECT_EQ(guard.epoch(), batches);
  EXPECT_EQ(oracle.recorded_epochs(), batches + 1);

  // Every observation names a recorded batch-boundary epoch and matches
  // its snapshot; an unrecorded epoch or a mismatched label would mean a
  // reader saw the middle of a batch.
  uint64_t validated = 0;
  for (int t = 0; t < kReaders; ++t) {
    uint64_t last_epoch = 0;
    for (const Observation& obs : observed[t]) {
      ASSERT_GE(obs.epoch, last_epoch) << "reader " << t;
      last_epoch = obs.epoch;
      const Status check =
          oracle.CheckObservation(obs.lid, obs.label, obs.epoch);
      ASSERT_TRUE(check.ok()) << "reader " << t << ": " << check.ToString();
      ++validated;
    }
  }
  EXPECT_EQ(validated, uint64_t{kReaders} * kLookupsPerReader);

  ASSERT_OK(scheme->CheckInvariants());
  ASSERT_TRUE(LabelsStrictlyIncreasing(scheme.get(), model.TagOrder()));
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, BatchConcurrencyTest,
    ::testing::Values(SchemeFactory{"wbox", &MakeWbox},
                      SchemeFactory{"bbox", &MakeBbox},
                      SchemeFactory{"naive16", &MakeNaive}),
    [](const ::testing::TestParamInfo<SchemeFactory>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace boxes::testing
