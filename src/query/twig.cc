#include "query/twig.h"

#include <algorithm>
#include <cctype>
#include <map>

namespace boxes::query {

namespace {

/// Recursive-descent parser for the compact twig syntax.
class TwigParser {
 public:
  explicit TwigParser(const std::string& text) : text_(text) {}

  StatusOr<TwigPattern> Parse() {
    BOXES_ASSIGN_OR_RETURN(TwigPattern pattern, ParsePattern());
    if (pos_ != text_.size()) {
      return Error("trailing characters");
    }
    return pattern;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("twig pattern error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  bool Consume(const char* token) {
    const size_t len = std::char_traits<char>::length(token);
    if (text_.compare(pos_, len, token) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  StatusOr<TwigPattern> ParsePattern() {
    BOXES_ASSIGN_OR_RETURN(TwigPattern head, ParseStep());
    if (Consume("//")) {
      BOXES_ASSIGN_OR_RETURN(TwigPattern rest, ParsePattern());
      head.children.push_back(std::move(rest));
    }
    return head;
  }

  StatusOr<TwigPattern> ParseStep() {
    TwigPattern step;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '-')) {
      step.tag.push_back(text_[pos_++]);
    }
    if (step.tag.empty()) {
      return Error("expected a tag name");
    }
    while (Consume("[")) {
      (void)Consume("//");  // optional leading // inside a branch
      BOXES_ASSIGN_OR_RETURN(TwigPattern branch, ParsePattern());
      if (!Consume("]")) {
        return Error("expected ']'");
      }
      step.children.push_back(std::move(branch));
    }
    return step;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

/// True iff some interval of `candidates` (sorted by start) lies strictly
/// inside `outer`. Tree intervals are properly nested, so the first
/// candidate starting after outer.start is inside iff it starts before
/// outer.end.
bool HasDescendantIn(const Interval& outer,
                     const std::vector<Interval>& candidates) {
  auto it = std::upper_bound(
      candidates.begin(), candidates.end(), outer.start,
      [](const Label& value, const Interval& x) { return value < x.start; });
  return it != candidates.end() && it->start < outer.end &&
         it->end < outer.end;
}

StatusOr<std::vector<Interval>> MatchNode(
    const TwigPattern& pattern,
    std::map<std::string, std::vector<Interval>>* tag_cache,
    const std::function<StatusOr<std::vector<Interval>>(const std::string&)>&
        intervals_for_tag) {
  auto cached = tag_cache->find(pattern.tag);
  if (cached == tag_cache->end()) {
    BOXES_ASSIGN_OR_RETURN(std::vector<Interval> fetched,
                           intervals_for_tag(pattern.tag));
    cached = tag_cache->emplace(pattern.tag, std::move(fetched)).first;
  }
  std::vector<Interval> candidates = cached->second;

  // Bottom-up: compute each child's match roots once, then keep only the
  // candidates containing a match of every child.
  std::vector<std::vector<Interval>> child_matches;
  child_matches.reserve(pattern.children.size());
  for (const TwigPattern& child : pattern.children) {
    BOXES_ASSIGN_OR_RETURN(
        std::vector<Interval> matches,
        MatchNode(child, tag_cache, intervals_for_tag));
    child_matches.push_back(std::move(matches));
  }
  std::vector<Interval> result;
  for (Interval& candidate : candidates) {
    bool all = true;
    for (const std::vector<Interval>& matches : child_matches) {
      if (!HasDescendantIn(candidate, matches)) {
        all = false;
        break;
      }
    }
    if (all) {
      result.push_back(std::move(candidate));
    }
  }
  return result;
}

}  // namespace

StatusOr<TwigPattern> ParseTwigPattern(const std::string& text) {
  return TwigParser(text).Parse();
}

StatusOr<std::vector<Interval>> MatchTwig(
    const TwigPattern& pattern,
    const std::function<StatusOr<std::vector<Interval>>(const std::string&)>&
        intervals_for_tag) {
  std::map<std::string, std::vector<Interval>> tag_cache;
  return MatchNode(pattern, &tag_cache, intervals_for_tag);
}

StatusOr<std::vector<Interval>> MatchTwig(
    const TwigPattern& pattern, LabelingScheme* scheme,
    const xml::Document& doc, const std::vector<NewElement>& lids) {
  return MatchTwig(pattern, [&](const std::string& tag) {
    return CollectIntervals(scheme, doc, lids, tag);
  });
}

}  // namespace boxes::query
