// Snapshot serving under concurrency (TSan preset): reader threads hammer
// the overlay's mmap path through LookupShared while a writer thread
// mutates the document under EpochWriteLock and a background thread
// recompiles + swaps images. Assertions: no torn labels (two lookups at
// one observed epoch must order consistently with document order), no
// per-thread epoch regressions, and a final full agreement check between
// the overlay and the live authority.

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/common/overlay.h"
#include "core/wbox/wbox.h"
#include "gtest/gtest.h"
#include "storage/page_cache.h"
#include "storage/snapshot.h"
#include "test_util.h"
#include "util/random.h"

namespace boxes::testing {
namespace {

constexpr int kBootstrapElements = 2000;
constexpr int kReaderThreads = 3;
constexpr int kReaderIterations = 4000;
constexpr int kWriterOps = 600;

TEST(SnapshotConcurrencyTest, ReadersServeWhileOverlayAbsorbsAndSwaps) {
  TestDb db;
  WBox wbox(&db.cache);
  const std::string path = ::testing::TempDir() + "boxes_snapconc_" +
                           std::to_string(::getpid()) + ".silo";
  OverlayOptions options;
  options.snapshot_path = path;
  options.log_capacity = 1 << 16;
  OverlayedScheme overlay(&wbox, options);

  // Bootstrap: a chain of root children. These elements are never deleted,
  // so bootstrap_lids[i] precedes bootstrap_lids[j] in document order for
  // all i < j, at every epoch — the invariant readers check.
  std::vector<Lid> bootstrap_starts;
  {
    ASSERT_OK_AND_ASSIGN(const NewElement root, overlay.InsertFirstElement());
    Random rng(0x5eedc0);
    for (int i = 0; i < kBootstrapElements; ++i) {
      ASSERT_OK_AND_ASSIGN(const NewElement fresh,
                           overlay.InsertElementBefore(root.end));
      bootstrap_starts.push_back(fresh.start);
    }
  }
  ASSERT_OK(overlay.Recompile());

  std::atomic<bool> writer_done{false};
  std::atomic<uint64_t> order_violations{0};
  std::atomic<uint64_t> epoch_regressions{0};
  std::atomic<uint64_t> same_epoch_pairs{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < kReaderThreads; ++t) {
    readers.emplace_back([&, t]() {
      Random rng(0xbead + t);
      uint64_t last_epoch = 0;
      for (int i = 0; i < kReaderIterations; ++i) {
        size_t a = rng.Uniform(bootstrap_starts.size());
        size_t b = rng.Uniform(bootstrap_starts.size());
        if (a == b) {
          continue;
        }
        if (a > b) {
          std::swap(a, b);
        }
        StatusOr<VersionedLabel> first =
            overlay.LookupShared(bootstrap_starts[a]);
        StatusOr<VersionedLabel> second =
            overlay.LookupShared(bootstrap_starts[b]);
        if (!first.ok() || !second.ok()) {
          // Bootstrap elements are never deleted; any failure is a bug.
          ++order_violations;
          continue;
        }
        if (first->epoch < last_epoch || second->epoch < first->epoch) {
          // A later observation can never be from an older committed
          // state (per-thread monotonicity of the epoch gate).
          ++epoch_regressions;
        }
        last_epoch = second->epoch;
        if (first->epoch == second->epoch) {
          // Same committed state: document order must hold exactly. A torn
          // label (half old image, half new) would break this.
          ++same_epoch_pairs;
          if (!(first->label < second->label)) {
            ++order_violations;
          }
        }
      }
    });
  }

  std::thread writer([&]() {
    Random rng(0xfeed);
    std::vector<NewElement> churn;
    for (int i = 0; i < kWriterOps; ++i) {
      EpochWriteLock lock(&overlay.epoch_guard());
      if (!churn.empty() && rng.Bernoulli(0.4)) {
        const size_t victim = rng.Uniform(churn.size());
        ASSERT_OK(overlay.Delete(churn[victim].start));
        ASSERT_OK(overlay.Delete(churn[victim].end));
        churn.erase(churn.begin() + static_cast<ptrdiff_t>(victim));
      } else {
        const Lid anchor =
            bootstrap_starts[rng.Uniform(bootstrap_starts.size())];
        StatusOr<NewElement> fresh = overlay.InsertElementBefore(anchor);
        ASSERT_OK(fresh.status());
        churn.push_back(*fresh);
      }
    }
    writer_done.store(true, std::memory_order_release);
  });

  std::thread recompiler([&]() {
    int swaps = 0;
    while (!writer_done.load(std::memory_order_acquire)) {
      const Status status = overlay.Recompile();
      ASSERT_OK(status);
      ++swaps;
    }
    EXPECT_GT(swaps, 0);
  });

  for (std::thread& reader : readers) {
    reader.join();
  }
  writer.join();
  recompiler.join();

  EXPECT_EQ(order_violations.load(), 0u);
  EXPECT_EQ(epoch_regressions.load(), 0u);
  EXPECT_GT(same_epoch_pairs.load(), 0u)
      << "no same-epoch pairs observed; the order check never engaged";

  // Quiesced: the overlay and the authority agree on every live label.
  for (const Lid lid : bootstrap_starts) {
    ASSERT_OK_AND_ASSIGN(const Label expected, wbox.Lookup(lid));
    ASSERT_OK_AND_ASSIGN(const Label got, overlay.Lookup(lid));
    ASSERT_EQ(expected, got) << "lid " << lid;
  }
  const OverlayServeStats stats = overlay.serve_stats();
  EXPECT_GT(stats.served_base + stats.served_repaired, 0u)
      << "readers never hit the mmap path";
  EXPECT_OK(overlay.CheckInvariants());
  ::unlink(path.c_str());
  ::unlink((path + ".tmp").c_str());
}

}  // namespace
}  // namespace boxes::testing
