#ifndef BOXES_UTIL_CODING_H_
#define BOXES_UTIL_CODING_H_

#include <cstdint>
#include <cstring>

namespace boxes {

/// Little-endian fixed-width load/store helpers used by all on-page record
/// layouts. memcpy-based so they are safe for unaligned access and free of
/// strict-aliasing issues; compilers lower them to single loads/stores.

inline void EncodeFixed16(uint8_t* dst, uint16_t value) {
  std::memcpy(dst, &value, sizeof(value));
}

inline void EncodeFixed32(uint8_t* dst, uint32_t value) {
  std::memcpy(dst, &value, sizeof(value));
}

inline void EncodeFixed64(uint8_t* dst, uint64_t value) {
  std::memcpy(dst, &value, sizeof(value));
}

inline uint16_t DecodeFixed16(const uint8_t* src) {
  uint16_t value;
  std::memcpy(&value, src, sizeof(value));
  return value;
}

inline uint32_t DecodeFixed32(const uint8_t* src) {
  uint32_t value;
  std::memcpy(&value, src, sizeof(value));
  return value;
}

inline uint64_t DecodeFixed64(const uint8_t* src) {
  uint64_t value;
  std::memcpy(&value, src, sizeof(value));
  return value;
}

/// LEB128 variable-length encoding, used by variable-width label
/// components (ORDPATH-style labels compress to ~1 byte per component).

/// Encodes `value` at `dst` (which must have >= 10 bytes of room) and
/// returns the number of bytes written.
inline size_t EncodeVarint64(uint8_t* dst, uint64_t value) {
  size_t written = 0;
  while (value >= 0x80) {
    dst[written++] = static_cast<uint8_t>(value) | 0x80;
    value >>= 7;
  }
  dst[written++] = static_cast<uint8_t>(value);
  return written;
}

/// Decodes a varint from [src, limit); advances *src past it. Returns
/// false on truncation or overlong input.
inline bool DecodeVarint64(const uint8_t** src, const uint8_t* limit,
                           uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63; shift += 7) {
    if (*src >= limit) {
      return false;
    }
    const uint8_t byte = *(*src)++;
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
  }
  return false;
}

}  // namespace boxes

#endif  // BOXES_UTIL_CODING_H_
