# Empty compiler generated dependencies file for wbox_test.
# This may be replaced when dependencies are built.
