#ifndef BOXES_STORAGE_IO_STATS_H_
#define BOXES_STORAGE_IO_STATS_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace boxes {

/// Counters of logical block I/Os, the paper's primary performance metric.
///
/// A "read" is the first touch of a page that is not resident in the current
/// operation's working set; a "write" is a dirty page flushed at the end of
/// an operation (or evicted under a bounded cache). Per-operation costs are
/// deltas of total().
struct IoStats {
  uint64_t reads = 0;
  uint64_t writes = 0;

  uint64_t total() const { return reads + writes; }

  IoStats Delta(const IoStats& earlier) const {
    IoStats d;
    d.reads = reads - earlier.reads;
    d.writes = writes - earlier.writes;
    return d;
  }

  std::string ToString() const;
};

/// The structural phase an I/O is charged to. The paper's figures report
/// per-operation totals; the phase breakdown tells *where inside* an
/// operation the blocks went (the W-BOX search descent vs. a split's
/// relabel sweep vs. the LIDF dereference, etc.).
///
/// Reads are attributed to the phase active at the cache miss; writes are
/// attributed to the phase that first dirtied the page (flushing happens at
/// operation end, when no phase is active, so flush-time attribution would
/// be meaningless).
enum class IoPhase : uint8_t {
  kOther = 0,   // no ScopedPhase active
  kSearch,      // root-to-leaf descents and record location
  kRelabel,     // label-changing sweeps (shifts, pair-cache fixes)
  kRebalance,   // splits, merges, weight bookkeeping, global rebuilds
  kLidfDeref,   // LIDF record access (allocate/read/write block pointers)
  kLogReplay,   // caching/logging layer activity (paper §6)
  kBulkLoad,    // bulk loading / subtree builds
};

inline constexpr size_t kNumIoPhases = 7;

/// Stable lowercase identifier for a phase ("search", "lidf_deref", ...).
const char* IoPhaseName(IoPhase phase);

/// Per-phase I/O counters, indexed by IoPhase.
using PhaseIoTable = std::array<IoStats, kNumIoPhases>;

}  // namespace boxes

#endif  // BOXES_STORAGE_IO_STATS_H_
