#ifndef BOXES_STORAGE_SUPERBLOCK_FORMAT_H_
#define BOXES_STORAGE_SUPERBLOCK_FORMAT_H_

#include <cstdint>

#include "util/coding.h"
#include "util/crc32c.h"

namespace boxes::superblock {

/// Page 0 of a checkpoint-enabled database is a dual-slot commit record.
/// Each slot is an independently checksummed (magic, sequence, checkpoint
/// chain head, WAL mark) record; the slot with the highest valid sequence
/// number is the current checkpoint. A commit writes the *inactive* slot
/// and leaves the active one byte-identical, so a write of page 0 torn at
/// any prefix preserves a loadable record: the old slot survives untouched
/// and the half-written new slot fails its CRC.
///
/// Slot layout (32 bytes, format v3 "BXD3"):
///   [0..3]   magic "BXD3"
///   [4..11]  sequence number (monotonically increasing across commits)
///   [12..19] checkpoint metadata-chain head (kInvalidPageId = none yet)
///   [20..27] WAL mark: the id of the first op-log batch NOT covered by
///            this checkpoint (== the next batch id the log will assign).
///            Recovery replays batches >= the mark's generation; the mark
///            also seeds batch-id continuity across restarts.
///   [28..31] CRC32C over bytes [0..27]
/// Slot A lives at page offset 0, slot B at offset 32; both fit the 64-byte
/// minimum page size.
inline constexpr uint32_t kSlotMagic = 0x33445842u;  // "BXD3"
inline constexpr size_t kSlotSize = 32;
inline constexpr size_t kNumSlots = 2;

/// The pre-WAL v2 slot magic ("BOXESDB2", 8 bytes at offset 0; sequence at
/// [8..15], head at [16..23], CRC32C over [0..23] at [24..27]). v3 cannot
/// open v2 databases — the slot carries no WAL mark — but it must SAY so:
/// without this probe a v2 database fails as "no valid commit record",
/// which reads as data corruption rather than a format-version mismatch.
inline constexpr uint64_t kSlotMagicV2 = 0x32424453'45584f42ULL;

/// True when the slot bytes decode as an intact v2 slot (v2 magic and a
/// valid v2 CRC). Used only to pick the right error once no v3 slot
/// decoded; a half-written or scribbled v2 slot stays plain corruption.
inline bool IsLegacyV2Slot(const uint8_t* in) {
  return DecodeFixed64(in) == kSlotMagicV2 &&
         DecodeFixed32(in + 24) == Crc32c(in, 24);
}

/// First batch id a fresh database's op log assigns.
inline constexpr uint64_t kFirstBatchId = 1;

struct Slot {
  bool valid = false;
  uint64_t sequence = 0;
  uint64_t head = UINT64_MAX;  // kInvalidPageId
  uint64_t wal_mark = kFirstBatchId;
};

inline void EncodeSlot(uint8_t* out, uint64_t sequence, uint64_t head,
                       uint64_t wal_mark = kFirstBatchId) {
  EncodeFixed32(out, kSlotMagic);
  EncodeFixed64(out + 4, sequence);
  EncodeFixed64(out + 12, head);
  EncodeFixed64(out + 20, wal_mark);
  EncodeFixed32(out + 28, Crc32c(out, 28));
}

inline Slot DecodeSlot(const uint8_t* in) {
  Slot slot;
  if (DecodeFixed32(in) != kSlotMagic ||
      DecodeFixed32(in + 28) != Crc32c(in, 28)) {
    return slot;  // invalid
  }
  slot.valid = true;
  slot.sequence = DecodeFixed64(in + 4);
  slot.head = DecodeFixed64(in + 12);
  slot.wal_mark = DecodeFixed64(in + 20);
  return slot;
}

/// Decodes both slots of a commit-record page and returns the index (0 or
/// 1) of the active one — valid with the highest sequence — or -1 if
/// neither slot is valid. `active`, if non-null, receives the decoded slot.
inline int PickActiveSlot(const uint8_t* page, Slot* active) {
  int best = -1;
  Slot best_slot;
  for (size_t i = 0; i < kNumSlots; ++i) {
    const Slot slot = DecodeSlot(page + i * kSlotSize);
    if (slot.valid && (best < 0 || slot.sequence > best_slot.sequence)) {
      best = static_cast<int>(i);
      best_slot = slot;
    }
  }
  if (best >= 0 && active != nullptr) {
    *active = best_slot;
  }
  return best;
}

}  // namespace boxes::superblock

#endif  // BOXES_STORAGE_SUPERBLOCK_FORMAT_H_
