#include "core/cachelog/caching_store.h"

namespace boxes {

CachingLabelStore::CachingLabelStore(LabelingScheme* scheme,
                                     size_t log_capacity, LogImpl impl)
    : scheme_(scheme) {
  if (impl == LogImpl::kIndexed) {
    log_ = std::make_unique<IndexedModificationLog>(log_capacity);
  } else {
    log_ = std::make_unique<ModificationLog>(log_capacity);
  }
  scheme_->SetUpdateListener(this);
}

CachingLabelStore::~CachingLabelStore() {
  if (scheme_->update_listener() == this) {
    scheme_->SetUpdateListener(nullptr);
  }
}

CachedLabelRef CachingLabelStore::MakeRef(Lid lid) const {
  CachedLabelRef ref;
  ref.lid = lid;
  return ref;
}

StatusOr<Label> CachingLabelStore::Lookup(CachedLabelRef* ref) {
  MetricsRegistry* metrics = scheme_->metrics();
  ScopedTimer timer(metrics, "cachelog.lookup.us");
  if (ref->has_value) {
    if (ref->last_cached == log_->now()) {
      ++served_fresh_;
      if (metrics != nullptr) {
        metrics->IncrementCounter("cachelog.served_fresh");
      }
      return ref->cached;
    }
    Label replayed = ref->cached;
    if (log_->Replay(ref->last_cached, &replayed) ==
        ModificationLog::ReplayResult::kUsable) {
      ++served_replayed_;
      if (metrics != nullptr) {
        metrics->IncrementCounter("cachelog.served_replayed");
      }
      ref->cached = replayed;
      ref->last_cached = log_->now();
      return replayed;
    }
  }
  // Full lookup, then refresh the reference.
  ++served_full_;
  if (metrics != nullptr) {
    metrics->IncrementCounter("cachelog.served_full");
  }
  BOXES_ASSIGN_OR_RETURN(Label label, scheme_->Lookup(ref->lid));
  ref->cached = label;
  ref->last_cached = log_->now();
  ref->has_value = true;
  return label;
}

StatusOr<uint64_t> CachingLabelStore::OrdinalLookup(CachedOrdinalRef* ref) {
  MetricsRegistry* metrics = scheme_->metrics();
  ScopedTimer timer(metrics, "cachelog.ordinal_lookup.us");
  if (ref->has_value) {
    if (ref->last_cached == log_->now()) {
      ++served_fresh_;
      if (metrics != nullptr) {
        metrics->IncrementCounter("cachelog.served_fresh");
      }
      return ref->cached;
    }
    uint64_t replayed = ref->cached;
    if (log_->ReplayOrdinal(ref->last_cached, &replayed) ==
        ModificationLog::ReplayResult::kUsable) {
      ++served_replayed_;
      if (metrics != nullptr) {
        metrics->IncrementCounter("cachelog.served_replayed");
      }
      ref->cached = replayed;
      ref->last_cached = log_->now();
      return replayed;
    }
  }
  ++served_full_;
  if (metrics != nullptr) {
    metrics->IncrementCounter("cachelog.served_full");
  }
  BOXES_ASSIGN_OR_RETURN(const uint64_t ordinal,
                         scheme_->OrdinalLookup(ref->lid));
  ref->cached = ordinal;
  ref->last_cached = log_->now();
  ref->has_value = true;
  return ordinal;
}

void CachingLabelStore::ResetServeStats() {
  served_fresh_ = 0;
  served_replayed_ = 0;
  served_full_ = 0;
}

void CachingLabelStore::OnRangeShift(const Label& lo, const Label& hi,
                                     int64_t delta,
                                     bool last_component_only) {
  (void)last_component_only;  // shifts always apply to the last component
  log_->AppendShift(lo, hi, delta);
}

void CachingLabelStore::OnInvalidateRange(const Label& lo, const Label& hi) {
  log_->AppendInvalidate(lo, hi);
}

void CachingLabelStore::OnOrdinalShift(uint64_t from, int64_t delta) {
  log_->AppendOrdinalShift(from, delta);
}

}  // namespace boxes
