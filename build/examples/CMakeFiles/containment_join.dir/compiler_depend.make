# Empty compiler generated dependencies file for containment_join.
# This may be replaced when dependencies are built.
