#include "replication/standby_applier.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <utility>
#include <vector>

#include "core/common/epoch_guard.h"
#include "storage/metadata_io.h"

namespace boxes::replication {

namespace {

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

StandbyApplier::StandbyApplier(PageCache* cache, LabelingScheme* scheme,
                               FaultyLink* link, MetricsRegistry* metrics,
                               StandbyApplierOptions options)
    : cache_(cache),
      scheme_(scheme),
      link_(link),
      metrics_(metrics),
      options_(options) {}

Status StandbyApplier::Init() {
  BOXES_ASSIGN_OR_RETURN(const SuperblockInfo info, LoadSuperblock(cache_));
  next_expected_ = info.wal_mark;
  fencing_token_ = info.fencing_token;
  return Status::OK();
}

Status StandbyApplier::InitFromRecovery(const WalRecoveryResult& recovered) {
  // The byte copy's own log tail replayed during bootstrap; resume after
  // it. A copy with an unreplayable (torn) tail resumes at the batch the
  // tear swallowed — the primary still has it, catch-up re-ships it.
  BOXES_ASSIGN_OR_RETURN(const SuperblockInfo info, LoadSuperblock(cache_));
  next_expected_ = recovered.replay.batches_replayed > 0
                       ? recovered.replay.last_replayed_batch + 1
                       : info.wal_mark;
  fencing_token_ = info.fencing_token;
  return Status::OK();
}

bool StandbyApplier::HasGap() const {
  return link_->drained() && !pending_.empty() &&
         pending_.begin()->first > next_expected_;
}

uint64_t StandbyApplier::lag_batches() const {
  return primary_horizon_ >= next_expected_
             ? primary_horizon_ - next_expected_ + 1
             : 0;
}

Status StandbyApplier::ReadGate() const {
  if (lag_batches() > 0) {
    return Status::Unavailable(
        "standby lags the primary by " + std::to_string(lag_batches()) +
        " batch(es); reads would serve stale order relations");
  }
  return Status::OK();
}

void StandbyApplier::UpdateLagGauges(uint64_t newest_ship_micros) {
  if (metrics_ == nullptr) {
    return;
  }
  metrics_->SetGauge("repl.lag_batches", lag_batches());
  if (newest_ship_micros != 0) {
    const uint64_t now = NowMicros();
    metrics_->SetGauge("repl.lag_us", now > newest_ship_micros
                                          ? now - newest_ship_micros
                                          : 0);
  }
}

Status StandbyApplier::Pump() {
  std::vector<uint8_t> bytes;
  uint64_t newest_ship_micros = 0;
  while (link_->Receive(&bytes)) {
    ShipFrame frame;
    if (!DecodeShipFrame(bytes, &frame)) {
      ++torn_frames_;
      if (metrics_ != nullptr) {
        metrics_->IncrementCounter("repl.torn_frames");
      }
      continue;  // indistinguishable from a drop; catch-up heals it
    }
    newest_ship_micros = frame.ship_micros;
    if (frame.fencing_token < fencing_token_) {
      // A deposed primary does not know it was deposed; its ships carry
      // the pre-promotion token. Rejecting them is what makes promotion
      // safe against the zombie continuing to acknowledge writes.
      ++fenced_rejects_;
      if (metrics_ != nullptr) {
        metrics_->IncrementCounter("repl.fenced_rejects");
      }
      continue;
    }
    if (frame.fencing_token > fencing_token_) {
      // This standby missed a promotion (e.g. it was partitioned while a
      // peer took over); adopt the new epoch.
      fencing_token_ = frame.fencing_token;
    }
    primary_horizon_ = std::max(primary_horizon_, frame.batch_id);
    if (frame.batch_id < next_expected_) {
      ++duplicate_frames_;
      if (metrics_ != nullptr) {
        metrics_->IncrementCounter("repl.duplicate_frames");
      }
      continue;
    }
    if (frame.batch_id > next_expected_) {
      // Reordered (or post-gap) frame: hold it. First intact copy wins;
      // later duplicates of the same id are dropped on the floor.
      pending_.emplace(frame.batch_id, std::move(frame));
      continue;
    }
    BOXES_RETURN_IF_ERROR(ApplyFrame(frame));
    // The frame may have unblocked buffered successors.
    auto it = pending_.begin();
    while (it != pending_.end() && it->first == next_expected_) {
      BOXES_RETURN_IF_ERROR(ApplyFrame(it->second));
      it = pending_.erase(it);
      // Skip any now-stale buffered frames an apply leapfrogged.
      while (it != pending_.end() && it->first < next_expected_) {
        ++duplicate_frames_;
        it = pending_.erase(it);
      }
    }
  }
  UpdateLagGauges(newest_ship_micros);
  return Status::OK();
}

Status StandbyApplier::ApplyFrame(const ShipFrame& frame) {
  std::vector<WalRecord> records;
  if (!DecodeWalRecordStream(frame.payload, frame.op_count, &records)) {
    // The frame CRCs matched but the stream inside is malformed: the
    // sender framed garbage, which is a protocol bug, not link noise.
    return Status::Corruption("ship frame for batch " +
                              std::to_string(frame.batch_id) +
                              " holds an undecodable record stream");
  }
  std::vector<std::unique_ptr<xml::Document>> docs;
  std::vector<BatchOp> ops;
  BOXES_RETURN_IF_ERROR(BuildOpsFromWalRecords(records, &docs, &ops));
  BatchStats stats;
  {
    // Identical shape to recovery replay: one write epoch per batch, I/O
    // attributed to log replay.
    EpochWriteLock lock(&scheme_->epoch_guard());
    ScopedPhase phase(cache_, IoPhase::kLogReplay);
    BOXES_RETURN_IF_ERROR(scheme_->ReplayBatch(&ops, &stats));
  }
  ++applied_batches_;
  ++applied_since_checkpoint_;
  next_expected_ = frame.batch_id + 1;
  if (metrics_ != nullptr) {
    metrics_->IncrementCounter("repl.applied_batches");
    metrics_->IncrementCounter("repl.applied_ops", ops.size());
  }
  if (options_.checkpoint_interval != 0 &&
      applied_since_checkpoint_ >= options_.checkpoint_interval) {
    BOXES_RETURN_IF_ERROR(CheckpointNow());
  }
  return Status::OK();
}

Status StandbyApplier::CheckpointNow() {
  BOXES_ASSIGN_OR_RETURN(const SuperblockInfo before, LoadSuperblock(cache_));
  BOXES_ASSIGN_OR_RETURN(const PageId head, scheme_->Checkpoint());
  BOXES_RETURN_IF_ERROR(
      CommitCheckpoint(cache_, head, next_expected_, fencing_token_));
  applied_since_checkpoint_ = 0;
  if (before.head != kInvalidPageId) {
    BOXES_RETURN_IF_ERROR(FreeMetadataChain(cache_, before.head));
  }
  if (metrics_ != nullptr) {
    metrics_->IncrementCounter("repl.standby_checkpoints");
  }
  return Status::OK();
}

Status StandbyApplier::Promote() {
  ++fencing_token_;
  if (metrics_ != nullptr) {
    metrics_->IncrementCounter("repl.promotions");
  }
  // Persisting the token through the same dual-slot commit as the apply
  // horizon makes promotion crash-safe: either the old slot survives (the
  // promotion never happened; retry) or the new one does (this node IS
  // the primary, and a restart re-learns both token and horizon).
  return CheckpointNow();
}

Status StandbyApplier::CheckDivergence(
    const ReplicationDigest& primary_digest) {
  BOXES_ASSIGN_OR_RETURN(const ReplicationDigest mine,
                         ComputeReplicationDigest(scheme_));
  if (metrics_ != nullptr) {
    metrics_->IncrementCounter("repl.digest_checks");
  }
  return CheckDigestsMatch(primary_digest, mine,
                           "horizon " + std::to_string(next_expected_ - 1));
}

}  // namespace boxes::replication
