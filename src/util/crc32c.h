#ifndef BOXES_UTIL_CRC32C_H_
#define BOXES_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace boxes {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected). The checksum
/// used by the verified on-disk page format and the checkpoint commit
/// record: iSCSI/ext4's polynomial, chosen over CRC-32 for its superior
/// burst-error detection on storage payloads.
///
/// `Crc32c(data, n)` is the one-shot form; `Crc32cExtend` chains partial
/// buffers: Crc32c(ab) == Crc32cExtend(Crc32c(a), b).
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace boxes

#endif  // BOXES_UTIL_CRC32C_H_
