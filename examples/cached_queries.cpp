// Read-heavy query serving with the §6 caching + logging layer: an index
// holds augmented label references; an update stream trickles in; cached
// lookups are served with zero I/O by replaying logged effects.
//
//   ./cached_queries [--elements=20000] [--queries=20000] [--log=256]

#include <cstdio>
#include <vector>

#include "core/bbox/bbox.h"
#include "core/cachelog/caching_store.h"
#include "storage/page_cache.h"
#include "storage/page_store.h"
#include "util/flags.h"
#include "util/random.h"
#include "xml/generators.h"

namespace {

void DieOnError(const boxes::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace boxes;  // NOLINT: example brevity

  FlagParser flags;
  int64_t* elements = flags.AddInt64("elements", 20000, "document size");
  int64_t* queries = flags.AddInt64("queries", 20000, "lookups to serve");
  int64_t* log_size = flags.AddInt64("log", 256, "modification log length");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  MemoryPageStore store;
  PageCache cache(&store);
  BBox bbox(&cache);
  CachingLabelStore label_store(&bbox, static_cast<size_t>(*log_size));

  const xml::Document doc =
      xml::MakeTwoLevelDocument(static_cast<uint64_t>(*elements));
  std::vector<NewElement> lids;
  {
    IoScope scope(&cache);
    DieOnError(bbox.BulkLoad(doc, &lids), "bulk load");
  }

  // "The index": one augmented reference per element start label.
  std::vector<CachedLabelRef> index;
  index.reserve(lids.size());
  for (const NewElement& e : lids) {
    index.push_back(label_store.MakeRef(e.start));
  }
  // Warm the cache once (a real system would fill it lazily).
  {
    IoScope scope(&cache);
    for (CachedLabelRef& ref : index) {
      DieOnError(label_store.Lookup(&ref).status(), "warm");
    }
  }
  label_store.ResetServeStats();
  DieOnError(cache.FlushAll(), "flush");
  cache.ResetStats();

  // Serve queries with an update every 50 reads.
  Random rng(17);
  for (int64_t q = 0; q < *queries; ++q) {
    if (q % 50 == 49) {
      IoScope scope(&cache);
      const size_t victim = 1 + rng.Uniform(lids.size() - 1);
      DieOnError(
          bbox.InsertElementBefore(lids[victim].start).status(),
          "update");
    }
    CachedLabelRef& ref = index[rng.Uniform(index.size())];
    StatusOr<Label> label = [&] {
      IoScope scope(&cache);
      return label_store.Lookup(&ref);
    }();
    DieOnError(label.status(), "query");
    // Consistency audit on a sample: the cached answer must equal the
    // scheme's answer.
    if (q % 997 == 0) {
      StatusOr<Label> direct = bbox.Lookup(ref.lid);
      DieOnError(direct.status(), "direct");
      if (!(*label == *direct)) {
        std::fprintf(stderr, "cache served a wrong label!\n");
        return 1;
      }
    }
  }

  const uint64_t served = label_store.served_fresh() +
                          label_store.served_replayed() +
                          label_store.served_full();
  std::printf("served %llu lookups with log length %lld:\n",
              static_cast<unsigned long long>(served),
              static_cast<long long>(*log_size));
  std::printf("  fresh cache hits : %llu\n",
              static_cast<unsigned long long>(label_store.served_fresh()));
  std::printf("  log replays      : %llu\n",
              static_cast<unsigned long long>(
                  label_store.served_replayed()));
  std::printf("  full lookups     : %llu\n",
              static_cast<unsigned long long>(label_store.served_full()));
  std::printf("total block I/Os (queries + updates): %s\n",
              cache.stats().ToString().c_str());
  std::printf(
      "without caching, the same reads alone would have cost ~%llu I/Os\n",
      static_cast<unsigned long long>(
          served * (1 + bbox.height())));
  return 0;
}
