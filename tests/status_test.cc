#include "util/status.h"

#include <string>

#include "gtest/gtest.h"

namespace boxes {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing widget");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing widget");
  EXPECT_EQ(s.ToString(), "NotFound: missing widget");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Corruption("").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::IoError("").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::ResourceExhausted("").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::FailedPrecondition("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unavailable("").code(), StatusCode::kUnavailable);
}

TEST(StatusTest, UnavailableIsDistinctFromShed) {
  // kUnavailable is "this healthy node cannot serve authoritatively yet"
  // (standby behind its primary, or fenced after losing authority) —
  // deliberately a different outcome class than a kResourceExhausted shed,
  // so fleet stats can separate replication lag from overload.
  const Status s = Status::Unavailable("standby lags the primary");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_NE(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(s.ToString(), "Unavailable: standby lags the primary");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::IoError("disk on fire"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> result(std::string("payload"));
  std::string value = std::move(result).value();
  EXPECT_EQ(value, "payload");
}

Status FailsIfNegative(int x) {
  if (x < 0) {
    return Status::InvalidArgument("negative");
  }
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  BOXES_RETURN_IF_ERROR(FailsIfNegative(x));
  return Status::OK();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

StatusOr<int> MaybeInt(bool ok) {
  if (!ok) {
    return Status::NotFound("no int");
  }
  return 7;
}

StatusOr<int> UsesAssignOrReturn(bool ok) {
  BOXES_ASSIGN_OR_RETURN(const int x, MaybeInt(ok));
  return x + 1;
}

TEST(StatusTaxonomyTest, RetryableCodesAreTransientFaults) {
  // Retryable: reissuing the operation may succeed (DESIGN.md §4f).
  EXPECT_TRUE(IsRetryableCode(StatusCode::kIoError));
  EXPECT_TRUE(IsRetryableCode(StatusCode::kResourceExhausted));
  // A lagging/fenced replica heals on its own; retrying (elsewhere, or
  // after catch-up) is the designed response.
  EXPECT_TRUE(IsRetryableCode(StatusCode::kUnavailable));
  // Corruption is damage, not a glitch; retrying re-reads the same rot.
  EXPECT_FALSE(IsRetryableCode(StatusCode::kCorruption));
  EXPECT_FALSE(IsRetryableCode(StatusCode::kInvalidArgument));
  EXPECT_FALSE(IsRetryableCode(StatusCode::kNotFound));
  EXPECT_FALSE(IsRetryableCode(StatusCode::kFailedPrecondition));
  EXPECT_FALSE(IsRetryableCode(StatusCode::kOk));
}

TEST(StatusTaxonomyTest, DataUnavailableCodesPermitDegradedReads) {
  // Data-unavailable: the authoritative value cannot be obtained, but a
  // cached copy may legitimately serve (marked possibly-stale). This is a
  // strict superset of the retryable codes plus Corruption.
  EXPECT_TRUE(IsDataUnavailableCode(StatusCode::kIoError));
  EXPECT_TRUE(IsDataUnavailableCode(StatusCode::kResourceExhausted));
  EXPECT_TRUE(IsDataUnavailableCode(StatusCode::kCorruption));
  // A standby that lags its primary has the data, just stale — exactly
  // the case degraded reads exist for.
  EXPECT_TRUE(IsDataUnavailableCode(StatusCode::kUnavailable));
  // Logic errors must never be masked by a stale answer.
  EXPECT_FALSE(IsDataUnavailableCode(StatusCode::kInvalidArgument));
  EXPECT_FALSE(IsDataUnavailableCode(StatusCode::kNotFound));
  EXPECT_FALSE(IsDataUnavailableCode(StatusCode::kFailedPrecondition));
  EXPECT_FALSE(IsDataUnavailableCode(StatusCode::kOk));
}

TEST(StatusMacroTest, AssignOrReturn) {
  StatusOr<int> good = UsesAssignOrReturn(true);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 8);
  StatusOr<int> bad = UsesAssignOrReturn(false);
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace boxes
