#include "util/biguint.h"

#include <algorithm>
#include <bit>

#include "util/coding.h"
#include "util/status.h"

namespace boxes {

BigUint::BigUint(uint64_t value) {
  if (value != 0) {
    limbs_.push_back(value);
  }
}

BigUint BigUint::PowerOfTwo(uint32_t bits) {
  BigUint result;
  result.limbs_.assign(bits / 64 + 1, 0);
  result.limbs_.back() = uint64_t{1} << (bits % 64);
  return result;
}

uint32_t BigUint::BitLength() const {
  if (limbs_.empty()) {
    return 0;
  }
  const uint32_t top_bits = 64 - std::countl_zero(limbs_.back());
  return static_cast<uint32_t>(limbs_.size() - 1) * 64 + top_bits;
}

BigUint BigUint::Add(const BigUint& other) const {
  const BigUint& a = limbs_.size() >= other.limbs_.size() ? *this : other;
  const BigUint& b = limbs_.size() >= other.limbs_.size() ? other : *this;
  BigUint result;
  result.limbs_.reserve(a.limbs_.size() + 1);
  uint64_t carry = 0;
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    const uint64_t bi = i < b.limbs_.size() ? b.limbs_[i] : 0;
    uint64_t sum = a.limbs_[i] + bi;
    const uint64_t carry1 = sum < a.limbs_[i] ? 1 : 0;
    sum += carry;
    const uint64_t carry2 = sum < carry ? 1 : 0;
    result.limbs_.push_back(sum);
    carry = carry1 + carry2;
  }
  if (carry != 0) {
    result.limbs_.push_back(carry);
  }
  return result;
}

BigUint BigUint::Sub(const BigUint& other) const {
  BOXES_CHECK(Compare(other) >= 0);
  BigUint result;
  result.limbs_.reserve(limbs_.size());
  uint64_t borrow = 0;
  for (size_t i = 0; i < limbs_.size(); ++i) {
    const uint64_t bi = i < other.limbs_.size() ? other.limbs_[i] : 0;
    uint64_t diff = limbs_[i] - bi;
    const uint64_t borrow1 = limbs_[i] < bi ? 1 : 0;
    const uint64_t diff2 = diff - borrow;
    const uint64_t borrow2 = diff < borrow ? 1 : 0;
    result.limbs_.push_back(diff2);
    borrow = borrow1 + borrow2;
  }
  BOXES_CHECK(borrow == 0);
  result.Normalize();
  return result;
}

BigUint BigUint::ShiftLeft(uint32_t bits) const {
  if (limbs_.empty() || bits == 0) {
    BigUint copy = *this;
    return copy;
  }
  const uint32_t limb_shift = bits / 64;
  const uint32_t bit_shift = bits % 64;
  BigUint result;
  result.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    result.limbs_[i + limb_shift] |= limbs_[i] << bit_shift;
    if (bit_shift != 0) {
      result.limbs_[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
    }
  }
  result.Normalize();
  return result;
}

BigUint BigUint::ShiftRight(uint32_t bits) const {
  const uint32_t limb_shift = bits / 64;
  if (limb_shift >= limbs_.size()) {
    return BigUint();
  }
  const uint32_t bit_shift = bits % 64;
  BigUint result;
  result.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < result.limbs_.size(); ++i) {
    result.limbs_[i] = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      result.limbs_[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
  }
  result.Normalize();
  return result;
}

BigUint BigUint::MulU64(uint64_t value) const {
  if (value == 0 || limbs_.empty()) {
    return BigUint();
  }
  BigUint result;
  result.limbs_.reserve(limbs_.size() + 1);
  uint64_t carry = 0;
  for (uint64_t limb : limbs_) {
    const unsigned __int128 prod =
        static_cast<unsigned __int128>(limb) * value + carry;
    result.limbs_.push_back(static_cast<uint64_t>(prod));
    carry = static_cast<uint64_t>(prod >> 64);
  }
  if (carry != 0) {
    result.limbs_.push_back(carry);
  }
  return result;
}

BigUint BigUint::CeilHalf() const {
  BigUint half = ShiftRight(1);
  if (!limbs_.empty() && (limbs_[0] & 1) != 0) {
    half = half.Add(BigUint(1));
  }
  return half;
}

std::strong_ordering BigUint::Compare(const BigUint& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() <=> other.limbs_.size();
  }
  for (size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) {
      return limbs_[i] <=> other.limbs_[i];
    }
  }
  return std::strong_ordering::equal;
}

uint64_t BigUint::ToUint64Truncated() const {
  return limbs_.empty() ? 0 : limbs_[0];
}

std::string BigUint::ToDecimalString() const {
  if (limbs_.empty()) {
    return "0";
  }
  // Repeated division by 10^9, emitting digits least-significant first.
  std::vector<uint64_t> work(limbs_.rbegin(), limbs_.rend());  // big-endian
  std::string digits;
  constexpr uint64_t kChunk = 1000000000ULL;
  while (!work.empty()) {
    uint64_t remainder = 0;
    std::vector<uint64_t> quotient;
    quotient.reserve(work.size());
    for (uint64_t limb : work) {
      const unsigned __int128 cur =
          (static_cast<unsigned __int128>(remainder) << 64) | limb;
      quotient.push_back(static_cast<uint64_t>(cur / kChunk));
      remainder = static_cast<uint64_t>(cur % kChunk);
    }
    size_t first = 0;
    while (first < quotient.size() && quotient[first] == 0) {
      ++first;
    }
    quotient.erase(quotient.begin(),
                   quotient.begin() + static_cast<ptrdiff_t>(first));
    const bool last_chunk = quotient.empty();
    for (int i = 0; i < 9; ++i) {
      digits.push_back(static_cast<char>('0' + remainder % 10));
      remainder /= 10;
      // The most significant chunk carries no leading zeros.
      if (last_chunk && remainder == 0) {
        break;
      }
    }
    work = std::move(quotient);
  }
  std::reverse(digits.begin(), digits.end());
  return digits;
}

void BigUint::Serialize(uint8_t* dst, size_t capacity_limbs) const {
  BOXES_CHECK(limbs_.size() <= capacity_limbs);
  for (size_t i = 0; i < capacity_limbs; ++i) {
    EncodeFixed64(dst + i * 8, i < limbs_.size() ? limbs_[i] : 0);
  }
}

BigUint BigUint::Deserialize(const uint8_t* src, size_t capacity_limbs) {
  BigUint result;
  result.limbs_.resize(capacity_limbs);
  for (size_t i = 0; i < capacity_limbs; ++i) {
    result.limbs_[i] = DecodeFixed64(src + i * 8);
  }
  result.Normalize();
  return result;
}

void BigUint::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) {
    limbs_.pop_back();
  }
}

}  // namespace boxes
