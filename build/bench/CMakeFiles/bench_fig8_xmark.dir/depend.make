# Empty dependencies file for bench_fig8_xmark.
# This may be replaced when dependencies are built.
