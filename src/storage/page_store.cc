#include "storage/page_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace boxes {

MemoryPageStore::MemoryPageStore(size_t page_size) : page_size_(page_size) {
  BOXES_CHECK(page_size_ >= 64);
}

StatusOr<PageId> MemoryPageStore::Allocate() {
  PageId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
    std::memset(pages_[id].get(), 0, page_size_);
    live_[id] = true;
  } else {
    id = pages_.size();
    pages_.push_back(std::make_unique<uint8_t[]>(page_size_));
    std::memset(pages_[id].get(), 0, page_size_);
    live_.push_back(true);
  }
  ++allocated_;
  return id;
}

Status MemoryPageStore::Free(PageId id) {
  BOXES_RETURN_IF_ERROR(CheckId(id));
  live_[id] = false;
  free_list_.push_back(id);
  --allocated_;
  return Status::OK();
}

Status MemoryPageStore::Read(PageId id, uint8_t* buf) {
  BOXES_RETURN_IF_ERROR(CheckId(id));
  std::memcpy(buf, pages_[id].get(), page_size_);
  return Status::OK();
}

Status MemoryPageStore::Write(PageId id, const uint8_t* buf) {
  BOXES_RETURN_IF_ERROR(CheckId(id));
  std::memcpy(pages_[id].get(), buf, page_size_);
  return Status::OK();
}

void MemoryPageStore::SnapshotAllocator(
    uint64_t* total, std::vector<PageId>* free_pages) const {
  *total = pages_.size();
  *free_pages = free_list_;
}

Status MemoryPageStore::RestoreAllocator(
    uint64_t total, const std::vector<PageId>& free_pages) {
  if (total < pages_.size()) {
    return Status::InvalidArgument(
        "allocator snapshot is smaller than the device");
  }
  while (pages_.size() < total) {
    pages_.push_back(std::make_unique<uint8_t[]>(page_size_));
    std::memset(pages_.back().get(), 0, page_size_);
    live_.push_back(false);
  }
  live_.assign(total, true);
  for (PageId id : free_pages) {
    if (id >= total) {
      return Status::InvalidArgument("free page beyond device size");
    }
    live_[id] = false;
  }
  free_list_ = free_pages;
  allocated_ = total - free_pages.size();
  return Status::OK();
}

Status MemoryPageStore::CheckId(PageId id) const {
  if (id >= pages_.size() || !live_[id]) {
    return Status::InvalidArgument("page " + std::to_string(id) +
                                   " is not allocated");
  }
  return Status::OK();
}

FilePageStore::FilePageStore(const std::string& path, size_t page_size,
                             Mode mode)
    : page_size_(page_size) {
  BOXES_CHECK(page_size_ >= 64);
  const int flags =
      mode == Mode::kTruncate ? (O_RDWR | O_CREAT | O_TRUNC) : O_RDWR;
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) {
    status_ = Status::IoError("open(" + path + "): " + std::strerror(errno));
    return;
  }
  if (mode == Mode::kOpen) {
    // Existing pages become live; the caller narrows this with
    // RestoreAllocator from checkpointed metadata.
    const off_t size = ::lseek(fd_, 0, SEEK_END);
    if (size < 0) {
      status_ = Status::IoError(std::string("lseek: ") + std::strerror(errno));
      return;
    }
    total_pages_ = static_cast<uint64_t>(size) / page_size_;
    live_.assign(total_pages_, true);
    allocated_ = total_pages_;
  }
}

FilePageStore::~FilePageStore() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

StatusOr<PageId> FilePageStore::Allocate() {
  if (!status_.ok()) {
    return status_;
  }
  PageId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
    live_[id] = true;
  } else {
    id = total_pages_;
    ++total_pages_;
    live_.push_back(true);
  }
  // Zero the page on the device.
  std::vector<uint8_t> zeros(page_size_, 0);
  BOXES_RETURN_IF_ERROR(Write(id, zeros.data()));
  ++allocated_;
  return id;
}

Status FilePageStore::Free(PageId id) {
  BOXES_RETURN_IF_ERROR(CheckId(id));
  live_[id] = false;
  free_list_.push_back(id);
  --allocated_;
  return Status::OK();
}

Status FilePageStore::Read(PageId id, uint8_t* buf) {
  BOXES_RETURN_IF_ERROR(CheckId(id));
  const off_t offset = static_cast<off_t>(id) * static_cast<off_t>(page_size_);
  ssize_t n = ::pread(fd_, buf, page_size_, offset);
  if (n < 0) {
    return Status::IoError(std::string("pread: ") + std::strerror(errno));
  }
  if (static_cast<size_t>(n) < page_size_) {
    // Reading past the current EOF of a sparse file: missing bytes are zero.
    std::memset(buf + n, 0, page_size_ - static_cast<size_t>(n));
  }
  return Status::OK();
}

Status FilePageStore::Write(PageId id, const uint8_t* buf) {
  if (!status_.ok()) {
    return status_;
  }
  if (id >= total_pages_ || !live_[id]) {
    return Status::InvalidArgument("page " + std::to_string(id) +
                                   " is not allocated");
  }
  const off_t offset = static_cast<off_t>(id) * static_cast<off_t>(page_size_);
  const ssize_t n = ::pwrite(fd_, buf, page_size_, offset);
  if (n < 0 || static_cast<size_t>(n) != page_size_) {
    return Status::IoError(std::string("pwrite: ") + std::strerror(errno));
  }
  return Status::OK();
}

void FilePageStore::SnapshotAllocator(
    uint64_t* total, std::vector<PageId>* free_pages) const {
  *total = total_pages_;
  *free_pages = free_list_;
}

Status FilePageStore::RestoreAllocator(
    uint64_t total, const std::vector<PageId>& free_pages) {
  if (total < total_pages_) {
    return Status::InvalidArgument(
        "allocator snapshot is smaller than the device");
  }
  total_pages_ = total;
  live_.assign(total, true);
  for (PageId id : free_pages) {
    if (id >= total) {
      return Status::InvalidArgument("free page beyond device size");
    }
    live_[id] = false;
  }
  free_list_ = free_pages;
  allocated_ = total - free_pages.size();
  return Status::OK();
}

Status FilePageStore::CheckId(PageId id) const {
  if (!status_.ok()) {
    return status_;
  }
  if (id >= total_pages_ || !live_[id]) {
    return Status::InvalidArgument("page " + std::to_string(id) +
                                   " is not allocated");
  }
  return Status::OK();
}

FaultInjectionPageStore::FaultInjectionPageStore(PageStore* base)
    : base_(base) {}

Status FaultInjectionPageStore::MaybeFail() {
  if (fail_after_ops_ == UINT64_MAX) {
    return Status::OK();
  }
  if (fail_after_ops_ == 0) {
    return Status::IoError("injected fault");
  }
  --fail_after_ops_;
  return Status::OK();
}

Status FaultInjectionPageStore::Read(PageId id, uint8_t* buf) {
  BOXES_RETURN_IF_ERROR(MaybeFail());
  return base_->Read(id, buf);
}

Status FaultInjectionPageStore::Write(PageId id, const uint8_t* buf) {
  BOXES_RETURN_IF_ERROR(MaybeFail());
  return base_->Write(id, buf);
}

}  // namespace boxes
