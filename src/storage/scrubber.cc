#include "storage/scrubber.h"

#include <utility>

namespace boxes {

Scrubber::Scrubber(PageStore* store, ScrubberOptions options)
    : store_(store), options_(options), scratch_(store->page_size()) {
  BOXES_CHECK(options_.pages_per_step >= 1);
}

void Scrubber::Count(uint64_t Counters::*field, const char* metric,
                     uint64_t delta) {
  (counters_.*field) += delta;
  if (metrics_ != nullptr) {
    metrics_->IncrementCounter(metric, delta);
  }
}

void Scrubber::AddStructuralCheck(std::string name,
                                  std::function<Status()> check) {
  checks_.push_back({std::move(name), std::move(check)});
}

void Scrubber::RefreshSnapshot() {
  std::vector<PageId> free_pages;
  store_->SnapshotAllocator(&snapshot_total_, &free_pages);
  free_set_ = std::set<PageId>(free_pages.begin(), free_pages.end());
  pass_open_ = true;
}

double Scrubber::pass_progress() const {
  if (!pass_open_ || snapshot_total_ == 0) {
    return 0.0;
  }
  return static_cast<double>(cursor_) / static_cast<double>(snapshot_total_);
}

void Scrubber::RunStructuralChecks() {
  for (const StructuralCheck& check : checks_) {
    Count(&Counters::structural_checks, "scrub.structural_checks");
    const Status status = check.check();
    if (!status.ok()) {
      Count(&Counters::structural_failures, "scrub.structural_failures");
      last_structural_error_ = Status(
          status.code(), "structural check '" + check.name +
                             "' failed: " + status.message());
    }
  }
}

Status Scrubber::Step() {
  Count(&Counters::steps, "scrub.steps");
  if (!pass_open_) {
    // A new pass sees the allocator as of now; pages allocated mid-pass
    // are picked up by the next one.
    RefreshSnapshot();
    cursor_ = 0;
  }
  uint64_t verified = 0;
  while (verified < options_.pages_per_step) {
    if (cursor_ >= snapshot_total_) {
      Count(&Counters::passes_completed, "scrub.passes_completed");
      pass_open_ = false;
      if (options_.structural_checks_each_pass) {
        RunStructuralChecks();
      }
      break;
    }
    const PageId id = cursor_++;
    if (free_set_.count(id) > 0) {
      continue;
    }
    const Status read = store_->Read(id, scratch_.data());
    if (read.code() == StatusCode::kInvalidArgument) {
      // The page was freed between the snapshot and this read; not damage.
      continue;
    }
    ++verified;
    Count(&Counters::pages_scanned, "scrub.pages_scanned");
    if (read.ok()) {
      if (quarantine_.erase(id) > 0) {
        Count(&Counters::pages_recovered, "scrub.pages_recovered");
      }
    } else if (read.code() == StatusCode::kCorruption) {
      if (quarantine_.insert(id).second) {
        Count(&Counters::corrupt_pages, "scrub.corrupt_pages");
      }
    } else {
      // Transient (IoError etc.): the page stays unverified this pass and
      // is revisited on the next one.
      Count(&Counters::read_errors, "scrub.read_errors");
    }
  }
  if (metrics_ != nullptr) {
    // A level, not an event count: the current quarantine size, refreshed
    // every step so recoveries pull the gauge back down.
    metrics_->SetGauge("scrub.quarantined_pages", quarantine_.size());
  }
  return Status::OK();
}

Status Scrubber::ScrubPass() {
  // Finish any partially-completed incremental pass first, then run one
  // complete pass, so that every page allocated at the time of this call
  // has been verified when it returns.
  while (pass_open_) {
    BOXES_RETURN_IF_ERROR(Step());
  }
  do {
    BOXES_RETURN_IF_ERROR(Step());
  } while (pass_open_);
  return Status::OK();
}

}  // namespace boxes
