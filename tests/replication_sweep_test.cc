// Link-fault replication sweep: for each scheme in the panel (WBox, BBox,
// Naive), run >= 100 seeded fault points — each seed derives its own mix
// of drop/duplicate/reorder/tear probabilities for the ship link — drive
// a small insert workload through the primary, catch the standby up with
// gap-triggered re-ships, and assert the standby's replication digest is
// bit-identical to the primary's. The digest hashes every live (LID,
// label) pair, so equality here means the standby agrees with the primary
// on every order relation the scheme can answer, for every fault schedule.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/bbox/bbox.h"
#include "core/common/labeling_scheme.h"
#include "core/common/update_buffer.h"
#include "core/naive/naive.h"
#include "core/wbox/wbox.h"
#include "gtest/gtest.h"
#include "replication/digest.h"
#include "replication/standby_applier.h"
#include "replication/transport.h"
#include "replication/wal_shipper.h"
#include "storage/metadata_io.h"
#include "storage/page_cache.h"
#include "storage/page_store.h"
#include "storage/wal.h"
#include "test_util.h"

namespace boxes::testing {
namespace {

using replication::ComputeReplicationDigest;
using replication::FaultyLink;
using replication::LinkFaultOptions;
using replication::ReplicationDigest;
using replication::StandbyApplier;
using replication::WalShipper;

constexpr size_t kPageSize = 1024;
constexpr int kSeedsPerScheme = 100;
constexpr int kFlushesPerRun = 6;
constexpr int kOpsPerFlush = 4;

enum class SchemeKind { kWBox, kBBox, kNaive };

std::unique_ptr<LabelingScheme> MakeScheme(SchemeKind kind, PageCache* cache) {
  switch (kind) {
    case SchemeKind::kWBox:
      return std::make_unique<WBox>(cache);
    case SchemeKind::kBBox:
      return std::make_unique<BBox>(cache);
    case SchemeKind::kNaive:
      return std::make_unique<NaiveScheme>(cache);
  }
  return nullptr;
}

// Every seed gets its own fault mix; the splitmix-style scramble keeps
// consecutive seeds from sampling near-identical schedules.
LinkFaultOptions FaultsForSeed(uint64_t seed) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  LinkFaultOptions faults;
  faults.drop_probability = 0.02 + 0.28 * ((z & 0xff) / 255.0);
  faults.duplicate_probability = 0.15 * (((z >> 8) & 0xff) / 255.0);
  faults.reorder_probability = 0.25 * (((z >> 16) & 0xff) / 255.0);
  faults.tear_probability = 0.10 * (((z >> 24) & 0xff) / 255.0);
  faults.seed = seed;
  return faults;
}

// One full replicate-under-faults run; returns after asserting digest
// equality so a failure names the (scheme, seed) that produced it.
void RunOneSeed(SchemeKind kind, uint64_t seed) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  MemoryPageStore primary_store(kPageSize);
  MemoryPageStore standby_store(kPageSize);
  FaultyLink link(FaultsForSeed(seed));

  PageCache primary_cache(&primary_store);
  std::unique_ptr<LabelingScheme> primary_scheme =
      MakeScheme(kind, &primary_cache);
  WalPipeline pipeline(&primary_cache, primary_scheme.get(),
                       {.checkpoint_interval = 0});
  UpdateBuffer buffer(primary_scheme.get(),
                      {.flush_threshold = 1024, .auto_flush = false});
  WalShipper shipper(&pipeline, &primary_cache, &link);
  ASSERT_OK(InitializeSuperblock(&primary_cache));
  ASSERT_OK(pipeline.Init());
  pipeline.Attach(&buffer);
  shipper.Attach();

  PageCache standby_cache(&standby_store);
  std::unique_ptr<LabelingScheme> standby_scheme =
      MakeScheme(kind, &standby_cache);
  StandbyApplier applier(&standby_cache, standby_scheme.get(), &link);
  ASSERT_OK(InitializeSuperblock(&standby_cache));
  ASSERT_OK(applier.Init());

  // Workload: a root, then sibling bursts with an occasional nested
  // insert so the schemes exercise their relabel/split paths too.
  ASSERT_OK_AND_ASSIGN(const UpdateBuffer::Ticket root_ticket,
                       buffer.InsertFirstElement());
  ASSERT_OK(buffer.Flush());
  ASSERT_OK_AND_ASSIGN(const NewElement root, buffer.Result(root_ticket));
  Lid nested_anchor = root.end;
  for (int f = 0; f < kFlushesPerRun; ++f) {
    std::vector<UpdateBuffer::Ticket> tickets;
    for (int i = 0; i < kOpsPerFlush; ++i) {
      const Lid anchor = (f % 2 == 1 && i == 0) ? nested_anchor : root.end;
      ASSERT_OK_AND_ASSIGN(const UpdateBuffer::Ticket ticket,
                           buffer.InsertElementBefore(anchor));
      tickets.push_back(ticket);
    }
    ASSERT_OK(buffer.Flush());
    ASSERT_OK_AND_ASSIGN(const NewElement first, buffer.Result(tickets[0]));
    nested_anchor = first.end;
    // Interleave catch-up with the workload so reordered frames from one
    // flush can straddle the next (every other flush, to keep lag real).
    if (f % 2 == 0) {
      ASSERT_OK(applier.Pump());
    }
  }

  // Catch-up: pump; when the link drains with a hole, re-ship it from the
  // primary's log (checkpoint_interval=0 above keeps the log complete —
  // the replication-slot rule).
  const uint64_t target = pipeline.writer().next_batch_id();
  bool caught_up = false;
  for (int round = 0; round < 512 && !caught_up; ++round) {
    ASSERT_OK(applier.Pump());
    if (applier.next_expected() >= target) {
      caught_up = true;
    } else if (link.drained()) {
      ASSERT_OK(shipper.ReShipFrom(applier.next_expected()));
    }
  }
  ASSERT_TRUE(caught_up) << "standby stuck at batch "
                         << applier.next_expected() << " of " << target;

  ASSERT_OK_AND_ASSIGN(const ReplicationDigest primary_digest,
                       ComputeReplicationDigest(primary_scheme.get()));
  ASSERT_OK_AND_ASSIGN(const ReplicationDigest standby_digest,
                       ComputeReplicationDigest(standby_scheme.get()));
  ASSERT_EQ(primary_digest, standby_digest)
      << "primary " << primary_digest.ToString() << " vs standby "
      << standby_digest.ToString();
  ASSERT_OK(applier.CheckDivergence(primary_digest));
  ASSERT_EQ(applier.lag_batches(), 0u);
}

class ReplicationSweepTest : public ::testing::TestWithParam<SchemeKind> {};

TEST_P(ReplicationSweepTest, StandbyConvergesToPrimaryDigestUnderLinkFaults) {
  uint64_t total_faults = 0;
  for (int s = 0; s < kSeedsPerScheme; ++s) {
    RunOneSeed(GetParam(), static_cast<uint64_t>(s) + 1);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
  // Sanity that the sweep exercised the fault machinery at all: rerun one
  // mid-sweep schedule and count its injected faults.
  FaultyLink probe(FaultsForSeed(kSeedsPerScheme / 2));
  for (uint8_t i = 0; i < 100; ++i) {
    ASSERT_OK(probe.Send({i}));
  }
  total_faults =
      probe.dropped() + probe.duplicated() + probe.reordered() + probe.torn();
  EXPECT_GT(total_faults, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, ReplicationSweepTest,
                         ::testing::Values(SchemeKind::kWBox,
                                           SchemeKind::kBBox,
                                           SchemeKind::kNaive),
                         [](const ::testing::TestParamInfo<SchemeKind>& info) {
                           switch (info.param) {
                             case SchemeKind::kWBox:
                               return "WBox";
                             case SchemeKind::kBBox:
                               return "BBox";
                             case SchemeKind::kNaive:
                               return "Naive";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace boxes::testing
