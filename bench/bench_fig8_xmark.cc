// Reproduces Figure 8: amortized update cost under the XMark insertion
// sequence (paper §7). An XMark-shaped document's elements are inserted one
// by one in document order of their start tags; the first `prime` elements
// are bulk loaded unmeasured (the paper primes with 200,000 of 336,242).

#include <cstdio>

#include "bench_common.h"
#include "util/flags.h"
#include "workload/sequences.h"
#include "xml/xmark.h"

namespace boxes::bench {
namespace {

int Run(int argc, char** argv) {
  const bool smoke = ExtractSmokeFlag(&argc, argv);
  FlagParser flags;
  int64_t* elements =
      flags.AddInt64("elements", 25000, "XMark document elements");
  int64_t* prime =
      flags.AddInt64("prime", 15000, "elements bulk loaded unmeasured");
  int64_t* seed = flags.AddInt64("seed", 42, "generator seed");
  std::string* schemes = flags.AddString(
      "schemes", "wbox,wbox-o,bbox,bbox-o,naive-1,naive-4,naive-16,naive-64",
      "comma-separated schemes");
  int64_t* page_size = flags.AddInt64("page_size", 8192, "block size");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  SmokeCap(smoke, elements, 4000);
  SmokeCap(smoke, prime, 2000);

  const xml::Document doc = xml::MakeXmarkDocument(
      static_cast<uint64_t>(*elements), static_cast<uint64_t>(*seed));
  std::printf(
      "FIG8: amortized update cost, XMark insertion sequence\n"
      "document: %llu elements, depth %llu, primed with %lld "
      "(paper: 336242 elements, primed with 200000)\n\n",
      static_cast<unsigned long long>(doc.element_count()),
      static_cast<unsigned long long>(doc.Depth()),
      static_cast<long long>(*prime));
  std::printf("%-12s %14s %14s %10s\n", "scheme", "avg I/Os/elem",
              "total I/Os", "p99 I/Os");

  for (const std::string& name : SplitSchemes(*schemes)) {
    SchemeUnderTest unit(static_cast<size_t>(*page_size));
    CheckOkOrDie(MakeScheme(name, &unit), "MakeScheme");
    workload::RunStats stats;
    CheckOkOrDie(workload::RunDocumentOrderInsertion(
                     unit.scheme.get(), unit.cache.get(), doc,
                     static_cast<uint64_t>(*prime), &stats),
                 "XMark run");
    std::printf("%-12s %14.2f %14llu %10llu\n", name.c_str(),
                stats.MeanCost(),
                static_cast<unsigned long long>(stats.totals.total()),
                static_cast<unsigned long long>(
                    stats.per_op_cost.Percentile(0.99)));
  }
  std::printf(
      "\nExpected shape (paper Fig. 8): between the scattered and\n"
      "concentrated extremes — every scheme pays some reorganization, the\n"
      "BOXes beat the naive policies, and the naive variants order among\n"
      "themselves as in the concentrated test.\n");
  return 0;
}

}  // namespace
}  // namespace boxes::bench

int main(int argc, char** argv) { return boxes::bench::Run(argc, argv); }
