# Empty compiler generated dependencies file for lidf_test.
# This may be replaced when dependencies are built.
