#include "core/ordpath/ordpath.h"

#include <vector>

#include "gtest/gtest.h"
#include "model_tree.h"
#include "test_util.h"
#include "util/random.h"
#include "xml/generators.h"

namespace boxes {
namespace {

using testing::LabelsStrictlyIncreasing;
using testing::ModelTree;
using testing::TagOrderLids;
using testing::TestDb;

using Components = std::vector<uint64_t>;

TEST(OrdpathBetweenTest, BasicGaps) {
  EXPECT_EQ(OrdpathScheme::Between({1}, {3}), Components({2}));
  EXPECT_EQ(OrdpathScheme::Between({1}, {10}), Components({2}));
  EXPECT_EQ(OrdpathScheme::Between({1}, {}), Components({2}));  // +inf
  EXPECT_EQ(OrdpathScheme::Between({}, {5}), Components({1}));
}

TEST(OrdpathBetweenTest, AdjacentValuesExtend) {
  EXPECT_EQ(OrdpathScheme::Between({1}, {2}), Components({1, 1}));
  EXPECT_EQ(OrdpathScheme::Between({1, 1}, {1, 2}), Components({1, 1, 1}));
  EXPECT_EQ(OrdpathScheme::Between({2, 7}, {3}), Components({2, 8}));
}

TEST(OrdpathBetweenTest, PrefixCases) {
  // a is a prefix of b.
  EXPECT_EQ(OrdpathScheme::Between({4}, {4, 5}), Components({4, 1}));
  EXPECT_EQ(OrdpathScheme::Between({4}, {4, 1, 9}), Components({4, 1}));
  // b == a + [1]: must dip below with a 0 component.
  EXPECT_EQ(OrdpathScheme::Between({4}, {4, 1}), Components({4, 0, 1}));
  EXPECT_EQ(OrdpathScheme::Between({}, {1}), Components({0, 1}));
}

TEST(OrdpathBetweenTest, PropertyBetweenRandomPairs) {
  Random rng(606);
  auto random_label = [&]() {
    Components label;
    const uint64_t depth = 1 + rng.Uniform(4);
    for (uint64_t i = 0; i < depth; ++i) {
      label.push_back(rng.Uniform(5));
    }
    if (label.back() == 0) {
      label.back() = 1;  // avoid trailing 0 (still legal, just rarer)
    }
    return label;
  };
  auto less = [](const Components& x, const Components& y) {
    return Label::FromComponents(x) < Label::FromComponents(y);
  };
  for (int trial = 0; trial < 5000; ++trial) {
    Components a = random_label();
    Components b = random_label();
    if (!less(a, b)) {
      std::swap(a, b);
    }
    if (!less(a, b)) {
      continue;  // equal
    }
    const Components mid = OrdpathScheme::Between(a, b);
    EXPECT_TRUE(less(a, mid)) << trial;
    EXPECT_TRUE(less(mid, b)) << trial;
    // And against infinity.
    const Components above = OrdpathScheme::Between(b, {});
    EXPECT_TRUE(less(b, above)) << trial;
  }
}

TEST(OrdpathTest, BasicInsertSemantics) {
  TestDb db;
  OrdpathScheme ordpath(&db.cache);
  ASSERT_OK_AND_ASSIGN(const NewElement root, ordpath.InsertFirstElement());
  ASSERT_OK_AND_ASSIGN(const NewElement b,
                       ordpath.InsertElementBefore(root.end));
  ASSERT_OK_AND_ASSIGN(const NewElement a,
                       ordpath.InsertElementBefore(b.start));
  EXPECT_TRUE(LabelsStrictlyIncreasing(
      &ordpath, {root.start, a.start, a.end, b.start, b.end, root.end}));
  ASSERT_OK(ordpath.CheckInvariants());
}

TEST(OrdpathTest, LabelsAreImmutable) {
  TestDb db;
  OrdpathScheme ordpath(&db.cache);
  ASSERT_OK_AND_ASSIGN(const NewElement root, ordpath.InsertFirstElement());
  ASSERT_OK_AND_ASSIGN(const Label root_start_before,
                       ordpath.Lookup(root.start));
  ASSERT_OK_AND_ASSIGN(const Label root_end_before,
                       ordpath.Lookup(root.end));
  NewElement target = root;
  for (int i = 0; i < 200; ++i) {
    ASSERT_OK_AND_ASSIGN(target, ordpath.InsertElementBefore(target.end));
  }
  // The defining property: existing labels never changed.
  ASSERT_OK_AND_ASSIGN(const Label root_start_after,
                       ordpath.Lookup(root.start));
  ASSERT_OK_AND_ASSIGN(const Label root_end_after,
                       ordpath.Lookup(root.end));
  EXPECT_TRUE(root_start_before == root_start_after);
  EXPECT_TRUE(root_end_before == root_end_after);
  ASSERT_OK(ordpath.CheckInvariants());
}

TEST(OrdpathTest, ConcentratedInsertionBlowsLabelsUp) {
  TestDb db;
  OrdpathScheme ordpath(&db.cache);
  ASSERT_OK_AND_ASSIGN(const NewElement root, ordpath.InsertFirstElement());
  // The paper's §2 claim about immutable schemes: the concentrated
  // sequence forces Ω(N)-bit labels. Squeeze insertions and watch the
  // encoded size grow linearly.
  NewElement last = root;
  for (int i = 0; i < 150; ++i) {
    ASSERT_OK_AND_ASSIGN(last, ordpath.InsertElementBefore(last.start));
  }
  // Each squeeze deepens the label; 150 inserts -> >= 150 bytes encoded.
  EXPECT_GE(ordpath.max_encoded_bytes(), 150u);
  ASSERT_OK(ordpath.CheckInvariants());
  // And eventually inserts fail with ResourceExhausted (bounded storage).
  OrdpathOptions tight;
  tight.max_label_bytes = 32;
  TestDb db2;
  OrdpathScheme cramped(&db2.cache, tight);
  ASSERT_OK_AND_ASSIGN(const NewElement root2, cramped.InsertFirstElement());
  NewElement cursor = root2;
  Status status = Status::OK();
  for (int i = 0; i < 100 && status.ok(); ++i) {
    StatusOr<NewElement> fresh = cramped.InsertElementBefore(cursor.start);
    status = fresh.status();
    if (fresh.ok()) {
      cursor = *fresh;
    }
  }
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
}

TEST(OrdpathTest, BulkLoadAndLookupCosts) {
  TestDb db;
  OrdpathScheme ordpath(&db.cache);
  const xml::Document doc = xml::MakeRandomDocument(1000, 6, 3);
  std::vector<NewElement> lids;
  ASSERT_OK(ordpath.BulkLoad(doc, &lids));
  EXPECT_TRUE(LabelsStrictlyIncreasing(&ordpath, TagOrderLids(doc, lids)));
  ASSERT_OK(ordpath.CheckInvariants());
  ASSERT_OK(db.cache.FlushAll());
  db.cache.ResetStats();
  constexpr int kLookups = 40;
  for (int i = 0; i < kLookups; ++i) {
    IoScope scope(&db.cache);
    ASSERT_OK(ordpath.Lookup(lids[(i * 37) % lids.size()].start).status());
  }
  // Like naive-k: the label lives in the LIDF record, 1 I/O per lookup.
  EXPECT_EQ(db.cache.stats().reads, 1u * kLookups);
}

TEST(OrdpathTest, RandomOpsAgreeWithModel) {
  TestDb db;
  OrdpathScheme ordpath(&db.cache);
  Random rng(31);
  ModelTree model;
  ASSERT_OK_AND_ASSIGN(const NewElement root, ordpath.InsertFirstElement());
  model.SetRoot(root);
  for (int step = 0; step < 800; ++step) {
    const uint64_t dice = rng.Uniform(100);
    if (dice < 60 || model.element_count() <= 1) {
      const int target = model.RandomElement(&rng, false);
      const bool before_start = rng.Bernoulli(0.5) && target != 0;
      const Lid anchor = before_start ? model.node(target).lids.start
                                      : model.node(target).lids.end;
      ASSERT_OK_AND_ASSIGN(const NewElement e,
                           ordpath.InsertElementBefore(anchor));
      if (before_start) {
        model.InsertBeforeStart(target, e);
      } else {
        model.InsertAsLastChild(target, e);
      }
    } else if (dice < 85) {
      const int target = model.RandomElement(&rng, true);
      ASSERT_OK(ordpath.Delete(model.node(target).lids.start));
      ASSERT_OK(ordpath.Delete(model.node(target).lids.end));
      model.DeleteElement(target);
    } else {
      const int target = model.RandomElement(&rng, true);
      const NewElement lids = model.node(target).lids;
      ASSERT_OK(ordpath.DeleteSubtree(lids.start, lids.end));
      model.DeleteSubtree(target);
    }
    if (step % 100 == 99) {
      ASSERT_OK(ordpath.CheckInvariants());
      ASSERT_TRUE(LabelsStrictlyIncreasing(&ordpath, model.TagOrder()));
    }
  }
  ASSERT_OK(ordpath.CheckInvariants());
  ASSERT_TRUE(LabelsStrictlyIncreasing(&ordpath, model.TagOrder()));
}

TEST(OrdpathTest, CachingNeverInvalidates) {
  // Immutable labels mean a cached reference stays fresh forever — the
  // §6 machinery degenerates gracefully.
  TestDb db;
  OrdpathScheme ordpath(&db.cache);
  ASSERT_OK_AND_ASSIGN(const NewElement root, ordpath.InsertFirstElement());
  ASSERT_OK_AND_ASSIGN(const Label before, ordpath.Lookup(root.start));
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK(ordpath.InsertElementBefore(root.end).status());
  }
  ASSERT_OK_AND_ASSIGN(const Label after, ordpath.Lookup(root.start));
  EXPECT_TRUE(before == after);
}

}  // namespace
}  // namespace boxes
