#ifndef BOXES_CORE_COMMON_LABELING_SCHEME_H_
#define BOXES_CORE_COMMON_LABELING_SCHEME_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/common/epoch_guard.h"
#include "core/common/label.h"
#include "lidf/lidf.h"
#include "util/metrics.h"
#include "util/status.h"
#include "xml/document.h"

namespace boxes {

/// LIDs assigned to a newly inserted element's start and end labels.
struct NewElement {
  Lid start = kInvalidLid;
  Lid end = kInvalidLid;
};

/// Structure statistics reported by GetStats(), used by the benchmark
/// harness (tree heights, label lengths, storage).
struct SchemeStats {
  /// Tree height in levels (leaves = 1); 0 for flat schemes (naive-k).
  uint64_t height = 0;
  /// Pages used by the index structure (excluding the LIDF).
  uint64_t index_pages = 0;
  /// Pages used by the LIDF.
  uint64_t lidf_pages = 0;
  /// Live labels currently maintained.
  uint64_t live_labels = 0;
  /// Maximum bits any current label needs under this scheme's encoding.
  uint32_t max_label_bits = 0;
};

/// Observer of label-changing effects, the hook the §6 caching + logging
/// layer attaches to a scheme. Every mutation that changes existing label
/// values reports its effect through exactly one of these callbacks.
class UpdateListener {
 public:
  virtual ~UpdateListener() = default;

  /// Labels in [lo, hi] (inclusive, lexicographic) changed by `delta`.
  /// With `last_component_only`, only the final component shifts (B-BOX
  /// leaf-local effects); otherwise the label shifts as an integer.
  virtual void OnRangeShift(const Label& lo, const Label& hi, int64_t delta,
                            bool last_component_only) = 0;

  /// Labels in [lo, hi] changed in a way not describable as a shift;
  /// cached values in the range must be discarded.
  virtual void OnInvalidateRange(const Label& lo, const Label& hi) = 0;

  /// Ordinal labels >= `from` changed by `delta` (ordinal-mode logging).
  virtual void OnOrdinalShift(uint64_t from, int64_t delta) = 0;
};

/// A label observed under a read ticket: the value plus the epoch (number
/// of committed writes) it was read at. Concurrent readers use the epoch to
/// order their observations against the writer's history.
struct VersionedLabel {
  Label label;
  uint64_t epoch = 0;
};

/// Ordinal variant of VersionedLabel.
struct VersionedOrdinal {
  uint64_t ordinal = 0;
  uint64_t epoch = 0;
};

/// Common interface of all dynamic order-based labeling schemes (W-BOX,
/// B-BOX, naive-k): maintains one label per tag of a dynamic XML document,
/// addressed by immutable LIDs (paper §3, "Supported operations").
///
/// Concurrency (DESIGN.md §4g): every scheme carries an EpochGuard. Mutating
/// operations (insert/delete/relabel/bulk load) must run under
/// EpochWriteLock(&scheme->epoch_guard()) — one writer at a time. The
/// read-only paths (Lookup, OrdinalLookup, Compare, and lookups routed
/// through CachingLabelStore) may then run from any number of reader
/// threads under EpochReadLock; LookupShared/OrdinalLookupShared package
/// that pattern. Single-threaded callers may ignore the guard entirely —
/// the plain virtuals are unsynchronized, exactly as before.
class LabelingScheme {
 public:
  virtual ~LabelingScheme() = default;

  /// Human-readable scheme name ("W-BOX", "naive-16", ...).
  virtual std::string name() const = 0;

  /// Returns the current value of the label identified by `lid`.
  virtual StatusOr<Label> Lookup(Lid lid) = 0;

  /// Returns the start and end labels of one element. The default issues
  /// two Lookups; W-BOX-O overrides this with its single-record fast path.
  virtual StatusOr<ElementLabels> LookupElement(Lid start_lid, Lid end_lid);

  /// Inserts a new element so that it immediately precedes the tag whose
  /// label is identified by `lid`; returns the new element's LIDs.
  /// If `lid` names an element's start label the new element becomes its
  /// previous sibling; if it names an end label the new element becomes
  /// that element's last child.
  virtual StatusOr<NewElement> InsertElementBefore(Lid lid) = 0;

  /// Inserts the first element into an empty structure (there is no
  /// existing tag to insert before). Returns its LIDs.
  virtual StatusOr<NewElement> InsertFirstElement();

  /// Removes the label identified by `lid` and frees the LID. Removing an
  /// element means calling this for both of its labels.
  virtual Status Delete(Lid lid) = 0;

  /// Loads `doc` into an empty scheme. `lids_out`, if non-null, receives
  /// one entry per element, indexed by ElementId.
  virtual Status BulkLoad(const xml::Document& doc,
                          std::vector<NewElement>* lids_out) = 0;

  /// Inserts an entire subtree (the whole document `subtree`) immediately
  /// before the tag identified by `before`. `lids_out` as in BulkLoad.
  /// The default implementation inserts element-at-a-time; W-BOX and B-BOX
  /// override it with their bulk algorithms.
  virtual Status InsertSubtreeBefore(Lid before, const xml::Document& subtree,
                                     std::vector<NewElement>* lids_out);

  /// Deletes an element and its entire subtree, identified by the
  /// element's start and end label LIDs (every label between them is
  /// removed and its LID freed). Default: Unimplemented.
  virtual Status DeleteSubtree(Lid root_start, Lid root_end);

  /// Document-order comparison of two labels: <0, 0, >0. The default
  /// compares Lookup() results; B-BOX overrides with its bottom-up
  /// lowest-common-ancestor walk.
  virtual StatusOr<int> Compare(Lid a, Lid b);

  /// True if this instance maintains ordinal labels (size fields).
  virtual bool SupportsOrdinal() const { return false; }

  /// The 0-based ordinal position of the tag within the document.
  /// Requires SupportsOrdinal().
  virtual StatusOr<uint64_t> OrdinalLookup(Lid lid);

  virtual StatusOr<SchemeStats> GetStats() = 0;

  /// Verifies every structural invariant; used heavily by tests.
  virtual Status CheckInvariants() { return Status::OK(); }

  /// Lookup under the scheme's epoch guard: acquires a read ticket
  /// (retrying on writer conflict), performs the lookup, and returns the
  /// value stamped with the epoch it was observed at. Thread-safe against
  /// one concurrent writer holding EpochWriteLock.
  StatusOr<VersionedLabel> LookupShared(Lid lid);

  /// Ordinal variant of LookupShared. Requires SupportsOrdinal().
  StatusOr<VersionedOrdinal> OrdinalLookupShared(Lid lid);

  /// The single-writer/multi-reader gate for this scheme (see class doc).
  EpochGuard& epoch_guard() { return epoch_guard_; }

  /// Attaches (or detaches, with nullptr) the caching/logging observer.
  void SetUpdateListener(UpdateListener* listener) { listener_ = listener; }
  UpdateListener* update_listener() const { return listener_; }

  /// Attaches (or detaches, with nullptr) a metrics registry. When set, the
  /// scheme records per-operation latency samples under
  /// "<name()>.<op>.us"; when null, instrumentation is a no-op.
  void SetMetrics(MetricsRegistry* metrics) { metrics_ = metrics; }
  MetricsRegistry* metrics() const { return metrics_; }

 protected:
  UpdateListener* listener_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;

 private:
  EpochGuard epoch_guard_;
};

}  // namespace boxes

#endif  // BOXES_CORE_COMMON_LABELING_SCHEME_H_
