#ifndef BOXES_WORKLOAD_FAILOVER_DRILL_H_
#define BOXES_WORKLOAD_FAILOVER_DRILL_H_

#include <cstdint>
#include <string>

#include "util/metrics.h"
#include "util/status.h"

namespace boxes::workload {

/// One failover drill (DESIGN.md §4k): a primary on a fault-injected file
/// store takes acknowledged writes through a transient fault storm, then
/// the device dies permanently mid-workload. The drill fails over —
/// warm (promote a WAL-shipped hot standby under a bumped fencing token)
/// or cold (heal the device and recover the primary's own crash image) —
/// resumes the write stream on the survivor, and audits that every
/// acknowledged op survived. The SLO gate is absolute: lost_acked_ops
/// must be 0, always, in both modes.
struct FailoverDrillOptions {
  /// Primary database file. Created fresh (any existing file is removed).
  std::string db_path;
  /// true: ship WAL to a hot standby and promote it after the kill.
  /// false: no standby; failover is heal + reopen + log recovery.
  bool warm_standby = true;
  uint64_t pre_kill_flushes = 24;
  uint64_t post_failover_flushes = 8;
  uint64_t ops_per_flush = 6;
  /// Per-operation transient device fault probability once the storm arms.
  double storm_probability = 0.05;
  /// Flush index (0-based) at which the storm arms.
  uint64_t storm_start_flush = 8;
  uint64_t seed = 1;
  size_t page_size = 1024;
  MetricsRegistry* metrics = nullptr;  // optional; not owned
};

struct FailoverDrillResult {
  bool warm = false;
  /// Ops whose flush was acknowledged to the client (root + children).
  uint64_t acked_ops = 0;
  /// Acked ops with a missing LID on the survivor. The gate: MUST be 0.
  uint64_t lost_acked_ops = 0;
  /// Live labels on the survivor after the post-failover stream. With
  /// element inserts only, this must equal 2 * acked_ops (start + end) —
  /// fewer is loss, more is a partially applied un-acked batch leaking in.
  uint64_t survivor_live_labels = 0;
  uint64_t shipped_batches = 0;
  /// Catch-up re-ships that healed link drops/tears (warm mode).
  uint64_t ship_retries = 0;
  /// Zombie ships from the deposed primary the standby rejected by fencing
  /// token (warm mode; the drill deliberately lets the corpse ship).
  uint64_t fenced_rejects = 0;
  /// Primary flushes that needed a retry to get through the storm.
  uint64_t flush_retries = 0;
  /// Device death -> first acknowledged write on the survivor.
  uint64_t unavailability_us = 0;
  /// The survivor's fencing token (old token + 1 in warm mode).
  uint64_t fencing_token = 0;
};

/// Runs the drill end to end. An error return means the drill machinery
/// itself broke (divergent digest, unrecoverable image, catch-up
/// impossible) — infrastructure failures, distinct from the lost-op count
/// the caller gates on.
StatusOr<FailoverDrillResult> RunFailoverDrill(
    const FailoverDrillOptions& options);

}  // namespace boxes::workload

#endif  // BOXES_WORKLOAD_FAILOVER_DRILL_H_
