// Twig pattern matching over order-based labels (Bruno et al., SIGMOD'02 —
// the second core operation the paper's labels serve). Parses a compact
// twig syntax, matches it against an XMark-shaped document, and prints the
// match roots, all through the query library.
//
//   ./twig_query [--elements=20000] [--twig="item[//mailbox]//text"]

#include <cstdio>

#include "core/wbox/wbox.h"
#include "query/twig.h"
#include "storage/page_cache.h"
#include "storage/page_store.h"
#include "util/flags.h"
#include "xml/xmark.h"

namespace {

void DieOnError(const boxes::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace boxes;  // NOLINT: example brevity

  FlagParser flags;
  int64_t* elements = flags.AddInt64("elements", 20000, "document size");
  std::string* twig_text = flags.AddString(
      "twig", "item[//mailbox][//incategory]//text", "twig pattern");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  StatusOr<query::TwigPattern> pattern = query::ParseTwigPattern(*twig_text);
  DieOnError(pattern.status(), "parse twig");

  MemoryPageStore store;
  PageCache cache(&store);
  WBoxOptions options;
  options.pair_mode = true;  // pair lookups at 2 I/Os feed the match
  WBox wbox(&cache, options);

  const xml::Document doc =
      xml::MakeXmarkDocument(static_cast<uint64_t>(*elements), 7);
  std::vector<NewElement> lids;
  {
    IoScope scope(&cache);
    DieOnError(wbox.BulkLoad(doc, &lids), "bulk load");
  }
  cache.ResetStats();

  StatusOr<std::vector<query::Interval>> roots = [&] {
    IoScope scope(&cache);
    return query::MatchTwig(*pattern, &wbox, doc, lids);
  }();
  DieOnError(roots.status(), "match");

  std::printf("twig  %s\n", twig_text->c_str());
  std::printf("over  %llu elements: %zu match roots\n",
              static_cast<unsigned long long>(doc.element_count()),
              roots->size());
  for (size_t i = 0; i < roots->size() && i < 5; ++i) {
    const query::Interval& interval = (*roots)[i];
    std::printf("  root #%zu: element %llu <%s> labels [%s, %s]\n", i,
                static_cast<unsigned long long>(interval.handle),
                doc.element(interval.handle).tag.c_str(),
                interval.start.ToString().c_str(),
                interval.end.ToString().c_str());
  }
  if (roots->size() > 5) {
    std::printf("  ... and %zu more\n", roots->size() - 5);
  }
  std::printf("match I/O: %s\n", cache.stats().ToString().c_str());
  return 0;
}
