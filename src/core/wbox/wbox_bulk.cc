#include <algorithm>
#include <cstring>
#include <vector>

#include "core/wbox/wbox.h"
#include "storage/metadata_io.h"
#include "util/coding.h"

namespace boxes {

// ---------------------------------------------------------------------------
// Traversal helpers

Status WBox::CollectLiveRecords(PageId page, uint32_t level,
                                std::vector<FlatRecord>* out) {
  BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(page));
  if (level == 0) {
    WBoxLeafView leaf(data, &params_);
    const uint16_t n = leaf.count();
    for (uint16_t i = 0; i < n; ++i) {
      if (!leaf.is_tombstone(i)) {
        out->push_back({leaf.lid(i), leaf.is_end_label(i)});
      }
    }
    return Status::OK();
  }
  WBoxInternalView node(data, &params_);
  const uint16_t n = node.count();
  // Child pages must be re-read per iteration because GetPage pointers can
  // alias; copy the child list first.
  std::vector<PageId> children;
  children.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    children.push_back(node.child(i));
  }
  for (PageId child : children) {
    BOXES_RETURN_IF_ERROR(CollectLiveRecords(child, level - 1, out));
  }
  return Status::OK();
}

Status WBox::FreeSubtree(PageId page, uint32_t level) {
  if (level > 0) {
    BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(page));
    WBoxInternalView node(data, &params_);
    const uint16_t n = node.count();
    std::vector<PageId> children;
    children.reserve(n);
    for (uint16_t i = 0; i < n; ++i) {
      children.push_back(node.child(i));
    }
    for (PageId child : children) {
      BOXES_RETURN_IF_ERROR(FreeSubtree(child, level - 1));
    }
  }
  return cache_->FreePage(page);
}

// ---------------------------------------------------------------------------
// Construction

Status WBox::BuildLeaves(const std::vector<FlatRecord>& records,
                         std::vector<ChildInfo>* leaves) {
  const uint64_t n = records.size();
  if (n == 0) {
    return Status::OK();
  }
  uint64_t fill = static_cast<uint64_t>(
      static_cast<double>(params_.leaf_capacity) *
      options_.bulk_fill_fraction);
  fill = std::clamp<uint64_t>(fill, 1, params_.leaf_capacity);
  const uint64_t min_leaf = params_.MinWeightExclusive(0) + 1;

  // Pre-compute chunk sizes so that no leaf (except a lone root leaf)
  // under-fills: a short tail is absorbed into the previous chunk when the
  // sum fits one leaf, and split evenly otherwise (even halves of a sum
  // above capacity stay above capacity/2 >= the minimum).
  std::vector<uint64_t> chunks;
  uint64_t full = n / fill;
  uint64_t rem = n % fill;
  for (uint64_t i = 0; i < full; ++i) {
    chunks.push_back(fill);
  }
  if (rem > 0) {
    if (!chunks.empty() && rem < min_leaf) {
      const uint64_t total = chunks.back() + rem;
      if (total <= params_.leaf_capacity) {
        chunks.back() = total;
      } else {
        chunks.back() = total / 2;
        chunks.push_back(total - total / 2);
      }
    } else {
      chunks.push_back(rem);
    }
  }

  uint64_t index = 0;
  for (uint64_t chunk : chunks) {
    uint8_t* data = nullptr;
    BOXES_ASSIGN_OR_RETURN(const PageId page, cache_->AllocatePage(&data));
    WBoxLeafView leaf(data, &params_);
    leaf.Init();
    for (uint64_t i = 0; i < chunk; ++i, ++index) {
      leaf.InsertRecordAt(static_cast<uint16_t>(i), records[index].lid,
                          records[index].is_end ? WBoxLeafView::kFlagIsEnd
                                                : 0);
      BOXES_RETURN_IF_ERROR(lidf_.WriteBlockPtr(records[index].lid, page));
    }
    leaves->push_back({page, chunk, chunk});
  }
  return Status::OK();
}

Status WBox::BuildInternalLevels(std::vector<ChildInfo> children,
                                 uint32_t child_level, ChildInfo* top,
                                 uint32_t* top_level) {
  BOXES_CHECK(!children.empty());
  uint32_t level = child_level;
  while (children.size() > 1) {
    ++level;
    const uint64_t target = params_.MaxWeight(level) * 3 / 4;
    const uint64_t min_weight = params_.MinWeightExclusive(level);
    // Weight-driven grouping into [first, last) index ranges.
    std::vector<std::pair<size_t, size_t>> groups;
    size_t first = 0;
    uint64_t group_weight = 0;
    for (size_t i = 0; i < children.size(); ++i) {
      if (i > first && group_weight + children[i].weight > target) {
        groups.push_back({first, i});
        first = i;
        group_weight = 0;
      }
      group_weight += children[i].weight;
    }
    groups.push_back({first, children.size()});
    // Balance an under-weight tail (only possible when >= 2 groups exist):
    // merge it with the previous group; if the merge would overflow, split
    // the merged child run evenly by weight.
    if (groups.size() > 1 && group_weight <= min_weight) {
      const auto tail = groups.back();
      groups.pop_back();
      auto& prev = groups.back();
      prev.second = tail.second;
      uint64_t merged = 0;
      for (size_t i = prev.first; i < prev.second; ++i) {
        merged += children[i].weight;
      }
      if (merged >= params_.MaxWeight(level)) {
        uint64_t acc = 0;
        size_t split = prev.first;
        while (split < prev.second && acc < merged / 2) {
          acc += children[split].weight;
          ++split;
        }
        const size_t end = prev.second;
        prev.second = split;
        groups.push_back({split, end});
      }
    }

    std::vector<ChildInfo> parents;
    parents.reserve(groups.size());
    for (const auto& [lo, hi] : groups) {
      uint8_t* data = nullptr;
      BOXES_ASSIGN_OR_RETURN(const PageId page, cache_->AllocatePage(&data));
      WBoxInternalView node(data, &params_);
      node.Init(static_cast<uint8_t>(level));
      uint64_t weight = 0;
      uint64_t live = 0;
      for (size_t i = lo; i < hi; ++i) {
        node.InsertEntryAt(
            static_cast<uint16_t>(i - lo), children[i].page,
            children[i].weight,
            options_.maintain_ordinal ? children[i].live : 0,
            /*subrange=*/0);  // assigned by AssignRanges
        weight += children[i].weight;
        live += children[i].live;
      }
      node.set_self_weight(weight);
      parents.push_back({page, weight, live});
    }
    children = std::move(parents);
  }
  *top = children[0];
  *top_level = level;
  return Status::OK();
}

Status WBox::AssignRanges(PageId page, uint32_t level, uint64_t lo,
                          bool fix_pairs) {
  BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPageForWrite(page));
  if (level == 0) {
    WBoxLeafView leaf(data, &params_);
    leaf.set_range_lo(lo);
    if (fix_pairs) {
      return FixPairCachesForSlots(page, 0, INT32_MAX);
    }
    return Status::OK();
  }
  WBoxInternalView node(data, &params_);
  node.set_range_lo(lo);
  const uint16_t n = node.count();
  const uint64_t child_len = params_.RangeLength(level - 1);
  std::vector<std::pair<PageId, uint64_t>> plan;
  plan.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    const uint16_t sub = static_cast<uint16_t>(
        (static_cast<uint64_t>(i) * params_.b) / n);
    node.set_subrange(i, sub);
    plan.push_back({node.child(i), lo + sub * child_len});
  }
  for (const auto& [child, child_lo] : plan) {
    BOXES_RETURN_IF_ERROR(AssignRanges(child, level - 1, child_lo, fix_pairs));
  }
  return Status::OK();
}

Status WBox::BuildSubtreeAtLevel(std::vector<ChildInfo> children,
                                 uint32_t child_level, uint32_t target_level,
                                 uint64_t range_lo, ChildInfo* top) {
  BOXES_CHECK(!children.empty());
  ChildInfo built;
  uint32_t built_level = child_level;
  if (children.size() == 1) {
    built = children[0];
  } else {
    BOXES_RETURN_IF_ERROR(
        BuildInternalLevels(std::move(children), child_level, &built,
                            &built_level));
  }
  BOXES_CHECK(built_level <= target_level);
  // Wrap in single-child chain nodes up to the target level. Feasible
  // because the caller guarantees the total weight meets the target level's
  // minimum, which dominates every intermediate level's minimum.
  while (built_level < target_level) {
    ++built_level;
    uint8_t* data = nullptr;
    BOXES_ASSIGN_OR_RETURN(const PageId page, cache_->AllocatePage(&data));
    WBoxInternalView node(data, &params_);
    node.Init(static_cast<uint8_t>(built_level));
    node.InsertEntryAt(0, built.page, built.weight,
                       options_.maintain_ordinal ? built.live : 0, 0);
    node.set_self_weight(built.weight);
    built = {page, built.weight, built.live};
  }
  BOXES_RETURN_IF_ERROR(
      AssignRanges(built.page, target_level, range_lo, /*fix_pairs=*/true));
  *top = built;
  return Status::OK();
}

Status WBox::BuildFromFlat(const std::vector<FlatRecord>& records) {
  live_labels_ = records.size();
  tombstones_ = 0;
  if (records.empty()) {
    root_ = kInvalidPageId;
    height_ = 0;
    return Status::OK();
  }
  std::vector<ChildInfo> leaves;
  BOXES_RETURN_IF_ERROR(BuildLeaves(records, &leaves));
  if (leaves.size() == 1) {
    root_ = leaves[0].page;
    height_ = 1;
    BOXES_RETURN_IF_ERROR(AssignRanges(root_, 0, 0, /*fix_pairs=*/false));
  } else {
    ChildInfo top;
    uint32_t top_level = 0;
    BOXES_RETURN_IF_ERROR(
        BuildInternalLevels(std::move(leaves), 0, &top, &top_level));
    root_ = top.page;
    height_ = top_level + 1;
    BOXES_RETURN_IF_ERROR(
        AssignRanges(root_, top_level, 0, /*fix_pairs=*/false));
  }
  return LinkPairsInOrder(records);
}

Status WBox::LinkPairsInOrder(const std::vector<FlatRecord>& records) {
  if (!options_.pair_mode) {
    return Status::OK();
  }
  // Balanced-parenthesis matching over the record sequence identifies each
  // start/end pair; link them directly.
  std::vector<Lid> stack;
  for (const FlatRecord& record : records) {
    if (!record.is_end) {
      stack.push_back(record.lid);
    } else if (!stack.empty()) {
      const Lid start_lid = stack.back();
      stack.pop_back();
      if (start_lid + 1 == record.lid) {
        BOXES_RETURN_IF_ERROR(LinkPair(start_lid, record.lid));
      }
      // Mismatched LIDs indicate a half-deleted element; leave unlinked.
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Bulk load and global rebuilding

Status WBox::FlattenDocument(const xml::Document& doc,
                             std::vector<FlatRecord>* records,
                             std::vector<NewElement>* lids_out) {
  records->reserve(records->size() + doc.tag_count());
  std::vector<NewElement> lids(doc.element_count());
  Status status = Status::OK();
  doc.ForEachTag([&](xml::ElementId id, bool is_start) {
    if (!status.ok()) {
      return;
    }
    if (is_start) {
      StatusOr<std::pair<Lid, Lid>> pair = lidf_.AllocatePair();
      if (!pair.ok()) {
        status = pair.status();
        return;
      }
      lids[id] = NewElement{pair->first, pair->second};
      records->push_back({pair->first, false});
    } else {
      records->push_back({lids[id].end, true});
    }
  });
  BOXES_RETURN_IF_ERROR(status);
  if (lids_out != nullptr) {
    *lids_out = std::move(lids);
  }
  return Status::OK();
}

Status WBox::BulkLoad(const xml::Document& doc,
                      std::vector<NewElement>* lids_out) {
  if (root_ != kInvalidPageId) {
    return Status::FailedPrecondition(
        "BulkLoad requires an empty W-BOX");
  }
  ScopedPhase io_phase(cache_, IoPhase::kBulkLoad);
  moved_in_op_.clear();
  std::vector<FlatRecord> records;
  BOXES_RETURN_IF_ERROR(FlattenDocument(doc, &records, lids_out));
  return BuildFromFlat(records);
}

Status WBox::GlobalRebuild() {
  ScopedPhase io_phase(cache_, IoPhase::kRebalance);
  ScopedTimer timer(metrics_, name() + ".global_rebuild.us");
  std::vector<FlatRecord> records;
  records.reserve(live_labels_);
  BOXES_RETURN_IF_ERROR(CollectLiveRecords(root_, height_ - 1, &records));
  BOXES_RETURN_IF_ERROR(FreeSubtree(root_, height_ - 1));
  root_ = kInvalidPageId;
  height_ = 0;
  BOXES_RETURN_IF_ERROR(BuildFromFlat(records));
  ++rebuild_count_;
  if (listener_ != nullptr) {
    listener_->OnInvalidateRange(Label::FromScalar(0),
                                 Label::FromScalar(UINT64_MAX));
  }
  return Status::OK();
}

namespace {
constexpr uint64_t kWBoxCheckpointMagic = 0x31584f4257ULL;  // "WBOX1"
}  // namespace

StatusOr<PageId> WBox::Checkpoint() {
  MetadataWriter writer;
  writer.PutU64(kWBoxCheckpointMagic);
  writer.PutU32(options_.pair_mode ? 1 : 0);
  writer.PutU32(options_.maintain_ordinal ? 1 : 0);
  writer.PutU64(cache_->page_size());
  writer.PutU64(root_);
  writer.PutU64(height_);
  writer.PutU64(live_labels_);
  writer.PutU64(tombstones_);
  writer.PutU64(rebuild_count_);
  lidf_.SaveState(&writer);
  // Durability is the commit's job: CommitCheckpoint flushes and syncs the
  // chain (with every dirty data page) before flipping the superblock, so
  // syncing here too would just double the fdatasync bill per checkpoint.
  return writer.Finish(cache_);
}

Status WBox::Restore(PageId checkpoint_head) {
  if (root_ != kInvalidPageId || live_labels_ != 0) {
    return Status::FailedPrecondition("Restore requires an empty W-BOX");
  }
  BOXES_ASSIGN_OR_RETURN(MetadataReader reader,
                         MetadataReader::Load(cache_, checkpoint_head));
  BOXES_ASSIGN_OR_RETURN(const uint64_t magic, reader.GetU64());
  if (magic != kWBoxCheckpointMagic) {
    return Status::Corruption("not a W-BOX checkpoint");
  }
  BOXES_ASSIGN_OR_RETURN(const uint32_t pair_mode, reader.GetU32());
  BOXES_ASSIGN_OR_RETURN(const uint32_t ordinal, reader.GetU32());
  BOXES_ASSIGN_OR_RETURN(const uint64_t page_size, reader.GetU64());
  if ((pair_mode != 0) != options_.pair_mode ||
      (ordinal != 0) != options_.maintain_ordinal ||
      page_size != cache_->page_size()) {
    return Status::InvalidArgument(
        "checkpoint options do not match this W-BOX");
  }
  BOXES_ASSIGN_OR_RETURN(root_, reader.GetU64());
  BOXES_ASSIGN_OR_RETURN(const uint64_t height, reader.GetU64());
  if (root_ != kInvalidPageId && root_ >= cache_->store()->total_pages()) {
    return Status::Corruption("checkpoint root page beyond the device");
  }
  if (height > 64 || (height == 0) != (root_ == kInvalidPageId)) {
    return Status::Corruption("checkpoint height is implausible");
  }
  height_ = static_cast<uint32_t>(height);
  BOXES_ASSIGN_OR_RETURN(live_labels_, reader.GetU64());
  BOXES_ASSIGN_OR_RETURN(tombstones_, reader.GetU64());
  BOXES_ASSIGN_OR_RETURN(rebuild_count_, reader.GetU64());
  return lidf_.LoadState(&reader);
}

Status WBox::MaybeGlobalRebuild() {
  const uint64_t total = live_labels_ + tombstones_;
  if (total < options_.min_rebuild_records) {
    return Status::OK();
  }
  if (static_cast<double>(tombstones_) <
      options_.rebuild_tombstone_ratio * static_cast<double>(live_labels_)) {
    return Status::OK();
  }
  return GlobalRebuild();
}

}  // namespace boxes
