#include <algorithm>
#include <functional>
#include <vector>

#include "core/wbox/wbox.h"

namespace boxes {

// ---------------------------------------------------------------------------
// Shared helpers

Status WBox::CollectLeaves(PageId page, uint32_t level,
                           std::vector<ChildInfo>* leaves) {
  BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(page));
  if (level == 0) {
    WBoxLeafView leaf(data, &params_);
    leaves->push_back({page, leaf.count(), leaf.live_count()});
    return Status::OK();
  }
  WBoxInternalView node(data, &params_);
  const uint16_t n = node.count();
  std::vector<PageId> children;
  children.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    children.push_back(node.child(i));
  }
  for (PageId child : children) {
    BOXES_RETURN_IF_ERROR(CollectLeaves(child, level - 1, leaves));
  }
  return Status::OK();
}

Status WBox::FreeInternalNodes(PageId page, uint32_t level) {
  if (level == 0) {
    return Status::OK();
  }
  BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(page));
  WBoxInternalView node(data, &params_);
  const uint16_t n = node.count();
  std::vector<PageId> children;
  children.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    children.push_back(node.child(i));
  }
  for (PageId child : children) {
    BOXES_RETURN_IF_ERROR(FreeInternalNodes(child, level - 1));
  }
  return cache_->FreePage(page);
}

Status WBox::RepairLeafSequence(std::vector<ChildInfo>* leaves) {
  const uint64_t min_leaf = params_.MinWeightExclusive(0) + 1;
  for (size_t i = 0; i < leaves->size();) {
    if (leaves->size() == 1 || (*leaves)[i].weight >= min_leaf) {
      ++i;
      continue;
    }
    // Merge with or borrow from a neighbor; prefer the left one.
    const size_t left = i > 0 ? i - 1 : i;
    const size_t right = left + 1;
    ChildInfo& li = (*leaves)[left];
    ChildInfo& ri = (*leaves)[right];
    BOXES_ASSIGN_OR_RETURN(uint8_t* left_data,
                           cache_->GetPageForWrite(li.page));
    BOXES_ASSIGN_OR_RETURN(uint8_t* right_data,
                           cache_->GetPageForWrite(ri.page));
    WBoxLeafView left_leaf(left_data, &params_);
    WBoxLeafView right_leaf(right_data, &params_);
    const uint64_t total = left_leaf.count() + right_leaf.count();
    if (total <= params_.leaf_capacity) {
      // Merge right into left.
      std::vector<Lid> moved;
      for (uint16_t j = 0; j < right_leaf.count(); ++j) {
        if (!right_leaf.is_tombstone(j)) {
          moved.push_back(right_leaf.lid(j));
        }
      }
      right_leaf.MovePrefixTo(right_leaf.count(), &left_leaf);
      BOXES_RETURN_IF_ERROR(FixRelocatedRecords(li.page, moved));
      BOXES_RETURN_IF_ERROR(cache_->FreePage(ri.page));
      li.weight = left_leaf.count();
      li.live = left_leaf.live_count();
      leaves->erase(leaves->begin() + static_cast<ptrdiff_t>(right));
      if (i > left) {
        i = left;  // re-examine the merged leaf
      }
    } else {
      // Redistribute so both halves are near total/2 (both >= min since
      // total > capacity >= 2*min).
      const uint16_t target_left = static_cast<uint16_t>(total / 2);
      std::vector<Lid> moved;
      if (left_leaf.count() > target_left) {
        const uint16_t from = target_left;
        for (uint16_t j = from; j < left_leaf.count(); ++j) {
          if (!left_leaf.is_tombstone(j)) {
            moved.push_back(left_leaf.lid(j));
          }
        }
        left_leaf.MoveSuffixToFront(from, &right_leaf);
        BOXES_RETURN_IF_ERROR(FixRelocatedRecords(ri.page, moved));
      } else if (left_leaf.count() < target_left) {
        const uint16_t n_moving =
            static_cast<uint16_t>(target_left - left_leaf.count());
        for (uint16_t j = 0; j < n_moving; ++j) {
          if (!right_leaf.is_tombstone(j)) {
            moved.push_back(right_leaf.lid(j));
          }
        }
        right_leaf.MovePrefixTo(n_moving, &left_leaf);
        BOXES_RETURN_IF_ERROR(FixRelocatedRecords(li.page, moved));
      }
      li.weight = left_leaf.count();
      li.live = left_leaf.live_count();
      ri.weight = right_leaf.count();
      ri.live = right_leaf.live_count();
      ++i;
    }
  }
  return Status::OK();
}

namespace {

/// A root-to-leaf path with one node page per level; index 0 = leaf.
struct LevelPath {
  std::vector<PageId> pages;    // pages[level]
  std::vector<int> entries;     // entries[level] = entry taken at pages[level]
};

}  // namespace

// ---------------------------------------------------------------------------
// Subtree insertion (paper §4, "Bulk loading and subtree insert/delete")

Status WBox::InsertSubtreeBefore(Lid before, const xml::Document& subtree,
                                 std::vector<NewElement>* lids_out) {
  if (subtree.empty()) {
    if (lids_out != nullptr) {
      lids_out->clear();
    }
    return Status::OK();
  }
  if (root_ == kInvalidPageId) {
    return Status::FailedPrecondition("W-BOX is empty");
  }
  ScopedPhase io_phase(cache_, IoPhase::kBulkLoad);
  ScopedTimer timer(metrics_, name() + ".insert_subtree.us");
  moved_in_op_.clear();
  const uint64_t n_new = subtree.tag_count();

  // Ensure the tree as a whole can absorb the new records.
  while (live_labels_ + tombstones_ + n_new + 1 >=
         params_.MaxWeight(height_ - 1)) {
    BOXES_RETURN_IF_ERROR(GrowRoot());
  }

  PageId leaf_page;
  int slot;
  uint64_t label;
  BOXES_RETURN_IF_ERROR(LocateLid(before, &leaf_page, &slot, &label));
  // The ordinal where the subtree's records splice in; everything at or
  // after it shifts by n_new. Captured before any restructuring — the
  // rebuild paths below destroy the information needed to compute it.
  uint64_t insert_ordinal = 0;
  if (options_.maintain_ordinal) {
    BOXES_ASSIGN_OR_RETURN(insert_ordinal, OrdinalOfLabel(label));
  }

  // Build the root-to-leaf path indexed by level.
  LevelPath lp;
  lp.pages.assign(height_, kInvalidPageId);
  lp.entries.assign(height_, -1);
  {
    PageId page = root_;
    for (uint32_t level = height_ - 1; level >= 1; --level) {
      lp.pages[level] = page;
      BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(page));
      WBoxInternalView node(data, &params_);
      const int entry = node.FindChildByLabel(label);
      if (entry < 0) {
        return Status::Corruption("label routes into unassigned subrange");
      }
      lp.entries[level] = entry;
      page = node.child(static_cast<uint16_t>(entry));
    }
    lp.pages[0] = page;
    BOXES_CHECK(page == leaf_page);
  }

  // Find the lowest ancestor v_i with room for n_new more records (paper:
  // check v_0, v_1, ... bottom-up). Every ancestor ABOVE the chosen level
  // also gains n_new records, so the rebuild level must sit above the
  // highest ancestor that lacks room.
  uint32_t target_level = 0;
  for (uint32_t level = 0; level < height_; ++level) {
    uint64_t weight;
    BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(lp.pages[level]));
    if (level == 0) {
      weight = WBoxLeafView(data, &params_).count();
    } else {
      weight = WBoxInternalView(data, &params_).self_weight();
    }
    if (weight + n_new + 1 >= params_.MaxWeight(level)) {
      target_level = level + 1;  // this node lacks room; rebuild above it
    }
  }
  BOXES_CHECK(target_level < height_);  // the root always has room

  std::vector<FlatRecord> records;
  BOXES_RETURN_IF_ERROR(FlattenDocument(subtree, &records, lids_out));

  if (target_level == 0) {
    // The whole subtree fits inside the target leaf: splice in place.
    BOXES_RETURN_IF_ERROR(AdjustPathCounts(label,
                                           static_cast<int64_t>(n_new),
                                           static_cast<int64_t>(n_new)));
    BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPageForWrite(leaf_page));
    WBoxLeafView leaf(data, &params_);
    const uint64_t last_label = leaf.LabelAt(leaf.count() - 1);
    for (uint64_t j = 0; j < n_new; ++j) {
      leaf.InsertRecordAt(
          static_cast<uint16_t>(slot + j), records[j].lid,
          records[j].is_end ? WBoxLeafView::kFlagIsEnd : uint8_t{0});
      BOXES_RETURN_IF_ERROR(lidf_.WriteBlockPtr(records[j].lid, leaf_page));
    }
    live_labels_ += n_new;
    EmitShift(label, last_label, static_cast<int64_t>(n_new));
    BOXES_RETURN_IF_ERROR(FixPairCachesForSlots(
        leaf_page, slot + static_cast<int>(n_new), leaf.count() - 1));
    if (options_.maintain_ordinal) {
      EmitOrdinalShift(insert_ordinal, static_cast<int64_t>(n_new));
    }
    return LinkPairsInOrder(records);
  }

  // Build fresh leaves for the new records.
  std::vector<ChildInfo> new_leaves;
  BOXES_RETURN_IF_ERROR(BuildLeaves(records, &new_leaves));

  // Split the target leaf at the insertion point; the new leaves go
  // between the two halves.
  PageId tail_page = kInvalidPageId;
  if (slot > 0) {
    BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPageForWrite(leaf_page));
    WBoxLeafView leaf(data, &params_);
    uint8_t* tail_data = nullptr;
    BOXES_ASSIGN_OR_RETURN(tail_page, cache_->AllocatePage(&tail_data));
    WBoxLeafView tail(tail_data, &params_);
    tail.Init();
    std::vector<Lid> moved;
    for (uint16_t j = static_cast<uint16_t>(slot); j < leaf.count(); ++j) {
      if (!leaf.is_tombstone(j)) {
        moved.push_back(leaf.lid(j));
      }
    }
    leaf.MoveSuffixTo(static_cast<uint16_t>(slot), &tail);
    BOXES_RETURN_IF_ERROR(FixRelocatedRecords(tail_page, moved));
  }

  // Assemble the new leaf sequence under v.
  const PageId v_page = lp.pages[target_level];
  std::vector<ChildInfo> seq;
  BOXES_RETURN_IF_ERROR(CollectLeaves(v_page, target_level, &seq));
  std::vector<ChildInfo> combined;
  combined.reserve(seq.size() + new_leaves.size() + 1);
  bool spliced = false;
  for (const ChildInfo& info : seq) {
    if (info.page == leaf_page) {
      spliced = true;
      if (slot > 0) {
        combined.push_back(info);  // head half (records < insertion point)
      }
      combined.insert(combined.end(), new_leaves.begin(), new_leaves.end());
      if (tail_page != kInvalidPageId) {
        BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(tail_page));
        WBoxLeafView tail(data, &params_);
        combined.push_back({tail_page, tail.count(), tail.live_count()});
      } else {
        combined.push_back(info);  // whole original leaf goes after
      }
    } else {
      combined.push_back(info);
    }
  }
  BOXES_CHECK(spliced);
  // Refresh the head half's counters after the split.
  if (slot > 0) {
    for (ChildInfo& info : combined) {
      if (info.page == leaf_page) {
        BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(leaf_page));
        WBoxLeafView head(data, &params_);
        info.weight = head.count();
        info.live = head.live_count();
        break;
      }
    }
  }
  BOXES_RETURN_IF_ERROR(RepairLeafSequence(&combined));

  // Rebuild the internal structure above the combined leaf sequence.
  const bool at_root = target_level == height_ - 1;
  uint64_t v_range_lo = 0;
  if (!at_root) {
    BOXES_ASSIGN_OR_RETURN(uint8_t* data,
                           cache_->GetPage(lp.pages[target_level + 1]));
    WBoxInternalView parent(data, &params_);
    v_range_lo = parent.ChildRangeLo(
        static_cast<uint16_t>(lp.entries[target_level + 1]));
  }
  BOXES_RETURN_IF_ERROR(FreeInternalNodes(v_page, target_level));

  if (at_root) {
    if (combined.size() == 1) {
      root_ = combined[0].page;
      height_ = 1;
      BOXES_RETURN_IF_ERROR(AssignRanges(root_, 0, 0, /*fix_pairs=*/true));
    } else {
      ChildInfo top;
      uint32_t top_level = 0;
      BOXES_RETURN_IF_ERROR(
          BuildInternalLevels(std::move(combined), 0, &top, &top_level));
      root_ = top.page;
      height_ = top_level + 1;
      BOXES_RETURN_IF_ERROR(
          AssignRanges(root_, top_level, 0, /*fix_pairs=*/true));
    }
    live_labels_ += n_new;
    EmitInvalidate(0, UINT64_MAX);
    if (options_.maintain_ordinal) {
      EmitOrdinalShift(insert_ordinal, static_cast<int64_t>(n_new));
    }
    return LinkPairsInOrder(records);
  }

  ChildInfo top;
  BOXES_RETURN_IF_ERROR(BuildSubtreeAtLevel(std::move(combined), 0,
                                            target_level, v_range_lo, &top));
  // Update the parent entry and all ancestors above it.
  for (uint32_t level = target_level + 1; level < height_; ++level) {
    BOXES_ASSIGN_OR_RETURN(uint8_t* data,
                           cache_->GetPageForWrite(lp.pages[level]));
    WBoxInternalView node(data, &params_);
    const uint16_t e = static_cast<uint16_t>(lp.entries[level]);
    if (level == target_level + 1) {
      node.set_child(e, top.page);
      node.set_weight(e, top.weight);
      node.set_size(e, options_.maintain_ordinal ? top.live : 0);
    } else {
      node.set_weight(e, node.weight(e) + n_new);
      if (options_.maintain_ordinal) {
        node.set_size(e, node.size(e) + n_new);
      }
    }
    node.set_self_weight(node.self_weight() + n_new);
  }
  live_labels_ += n_new;
  EmitInvalidate(v_range_lo,
                 v_range_lo + params_.RangeLength(target_level) - 1);
  if (options_.maintain_ordinal) {
    EmitOrdinalShift(insert_ordinal, static_cast<int64_t>(n_new));
  }
  return LinkPairsInOrder(records);
}

// ---------------------------------------------------------------------------
// Subtree deletion

Status WBox::RemoveLabelRange(PageId page, uint32_t level, uint64_t lo,
                              uint64_t hi, uint64_t* removed_weight,
                              uint64_t* removed_live) {
  if (level == 0) {
    BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPageForWrite(page));
    WBoxLeafView leaf(data, &params_);
    const uint64_t leaf_lo = leaf.range_lo();
    const uint16_t n = leaf.count();
    if (n == 0) {
      return Status::OK();
    }
    const uint64_t first_label = leaf_lo;
    const uint64_t last_label = leaf_lo + n - 1;
    if (hi < first_label || lo > last_label) {
      return Status::OK();
    }
    const uint16_t from =
        static_cast<uint16_t>(lo > first_label ? lo - leaf_lo : 0);
    const uint16_t to = static_cast<uint16_t>(
        hi < last_label ? hi - leaf_lo : n - 1);
    for (uint16_t j = from; j <= to; ++j) {
      if (!leaf.is_tombstone(j)) {
        BOXES_RETURN_IF_ERROR(lidf_.Free(leaf.lid(j)));
        ++*removed_live;
      }
      ++*removed_weight;
    }
    leaf.RemoveRecordRange(from, to);
    // Surviving records after `to` shifted down; refresh pair caches.
    if (leaf.count() > from) {
      BOXES_RETURN_IF_ERROR(
          FixPairCachesForSlots(page, from, leaf.count() - 1));
    }
    return Status::OK();
  }

  BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPageForWrite(page));
  WBoxInternalView node(data, &params_);
  const uint64_t child_len = params_.RangeLength(level - 1);
  for (uint16_t i = 0; i < node.count();) {
    const uint64_t child_lo = node.ChildRangeLo(i);
    const uint64_t child_hi = child_lo + child_len - 1;
    if (child_hi < lo || child_lo > hi) {
      ++i;
      continue;
    }
    const PageId child = node.child(i);
    if (child_lo >= lo && child_hi <= hi) {
      // Entire child range is covered: free its records' LIDs and pages.
      std::vector<FlatRecord> victims;
      BOXES_RETURN_IF_ERROR(CollectLiveRecords(child, level - 1, &victims));
      for (const FlatRecord& victim : victims) {
        BOXES_RETURN_IF_ERROR(lidf_.Free(victim.lid));
      }
      *removed_live += victims.size();
      *removed_weight += node.weight(i);
      BOXES_RETURN_IF_ERROR(FreeSubtree(child, level - 1));
      node.set_self_weight(node.self_weight() - node.weight(i));
      node.RemoveEntryAt(i);
      continue;  // entry i now refers to the next child
    }
    // Partial overlap: recurse, then drop the child if it emptied out.
    uint64_t child_removed_weight = 0;
    uint64_t child_removed_live = 0;
    BOXES_RETURN_IF_ERROR(RemoveLabelRange(child, level - 1, lo, hi,
                                           &child_removed_weight,
                                           &child_removed_live));
    *removed_weight += child_removed_weight;
    *removed_live += child_removed_live;
    node.set_weight(i, node.weight(i) - child_removed_weight);
    node.set_self_weight(node.self_weight() - child_removed_weight);
    if (options_.maintain_ordinal) {
      node.set_size(i, node.size(i) - child_removed_live);
    }
    if (node.weight(i) == 0) {
      BOXES_RETURN_IF_ERROR(FreeSubtree(child, level - 1));
      node.RemoveEntryAt(i);
      continue;
    }
    ++i;
  }
  return Status::OK();
}

namespace {

/// Result of scanning for weight-constraint violations.
struct Violation {
  bool found = false;
  uint32_t level = 0;       // level of the highest violating node
  PageId parent = kInvalidPageId;  // its parent (invalid if violator = root)
};

}  // namespace

Status WBox::DeleteSubtree(Lid root_start, Lid root_end) {
  if (root_ == kInvalidPageId) {
    return Status::FailedPrecondition("W-BOX is empty");
  }
  ScopedPhase io_phase(cache_, IoPhase::kBulkLoad);
  ScopedTimer timer(metrics_, name() + ".delete_subtree.us");
  moved_in_op_.clear();
  PageId leaf1;
  PageId leaf2;
  int slot1;
  int slot2;
  uint64_t l1;
  uint64_t l2;
  BOXES_RETURN_IF_ERROR(LocateLid(root_start, &leaf1, &slot1, &l1));
  BOXES_RETURN_IF_ERROR(LocateLid(root_end, &leaf2, &slot2, &l2));
  if (l1 >= l2) {
    return Status::InvalidArgument(
        "root_start must precede root_end in document order");
  }
  uint64_t ordinal1 = 0;
  if (options_.maintain_ordinal) {
    BOXES_ASSIGN_OR_RETURN(ordinal1, OrdinalOfLabel(l1));
  }

  uint64_t removed_weight = 0;
  uint64_t removed_live = 0;
  BOXES_RETURN_IF_ERROR(RemoveLabelRange(root_, height_ - 1, l1, l2,
                                         &removed_weight, &removed_live));
  live_labels_ -= removed_live;
  tombstones_ -= removed_weight - removed_live;
  // All labels at or above l1 may have shifted (within boundary leaves) or
  // will be relabeled by the rebuild below.
  EmitInvalidate(l1, UINT64_MAX);
  if (options_.maintain_ordinal) {
    EmitOrdinalShift(ordinal1, -static_cast<int64_t>(removed_live));
  }

  // Did the whole structure empty out?
  {
    BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(root_));
    uint16_t root_count;
    if (WBoxNodeType(data) == WBoxLeafView::kNodeType) {
      root_count = WBoxLeafView(data, &params_).count();
    } else {
      root_count = WBoxInternalView(data, &params_).count();
    }
    if (root_count == 0) {
      BOXES_RETURN_IF_ERROR(FreeSubtree(root_, height_ - 1));
      root_ = kInvalidPageId;
      height_ = 0;
      return Status::OK();
    }
  }

  // Look for the highest node violating its minimum-weight constraint, and
  // rebuild at its parent (the lowest ancestor with enough remaining weight,
  // paper §4). Only nodes along the two boundary paths can violate, but a
  // full scan is within the operation's O(N/B) budget and simpler.
  Violation violation;
  struct StackEntry {
    PageId page;
    uint32_t level;
    PageId parent;
  };
  std::vector<StackEntry> stack{{root_, height_ - 1, kInvalidPageId}};
  bool root_underfanned = false;
  while (!stack.empty()) {
    const StackEntry entry = stack.back();
    stack.pop_back();
    BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(entry.page));
    uint64_t weight;
    if (entry.level == 0) {
      weight = WBoxLeafView(data, &params_).count();
    } else {
      WBoxInternalView node(data, &params_);
      weight = node.self_weight();
      for (uint16_t i = 0; i < node.count(); ++i) {
        stack.push_back({node.child(i), entry.level - 1, entry.page});
      }
      if (entry.page == root_ && node.count() < 2) {
        root_underfanned = true;
      }
    }
    const bool is_root = entry.page == root_;
    if (!is_root && weight <= params_.MinWeightExclusive(entry.level) &&
        (!violation.found || entry.level > violation.level)) {
      violation.found = true;
      violation.level = entry.level;
      violation.parent = entry.parent;
    }
  }
  if (!violation.found && !root_underfanned) {
    return Status::OK();
  }

  // Rebuild target: the violator's parent, or the root.
  PageId z_page = violation.found ? violation.parent : root_;
  uint32_t z_level = violation.found ? violation.level + 1 : height_ - 1;
  if (root_underfanned && violation.found) {
    // Prefer the higher rebuild point.
    if (height_ - 1 > z_level) {
      z_page = root_;
      z_level = height_ - 1;
    }
  }

  // Locate z's range and parent entry by descending for it.
  const bool at_root = z_page == root_;
  uint64_t z_lo = 0;
  LevelPath lp;
  if (!at_root) {
    // Find the path to z by a DFS for its page (z may no longer be on the
    // l1 path after removals); ranges make a directed search possible only
    // by label, so search structurally.
    lp.pages.assign(height_, kInvalidPageId);
    lp.entries.assign(height_, -1);
    struct SearchEntry {
      PageId page;
      uint32_t level;
    };
    std::vector<SearchEntry> path_stack;
    // Iterative DFS tracking the current path.
    Status search_status = Status::OK();
    bool found = false;
    std::function<Status(PageId, uint32_t)> dfs = [&](PageId page,
                                                      uint32_t level)
        -> Status {
      if (found) {
        return Status::OK();
      }
      if (page == z_page) {
        found = true;
        return Status::OK();
      }
      if (level == 0) {
        return Status::OK();
      }
      BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(page));
      WBoxInternalView node(data, &params_);
      const uint16_t n = node.count();
      std::vector<PageId> children;
      children.reserve(n);
      for (uint16_t i = 0; i < n; ++i) {
        children.push_back(node.child(i));
      }
      for (uint16_t i = 0; i < n && !found; ++i) {
        lp.pages[level] = page;
        lp.entries[level] = i;
        BOXES_RETURN_IF_ERROR(dfs(children[i], level - 1));
      }
      return Status::OK();
    };
    search_status = dfs(root_, height_ - 1);
    BOXES_RETURN_IF_ERROR(search_status);
    BOXES_CHECK(found);
    BOXES_ASSIGN_OR_RETURN(uint8_t* data,
                           cache_->GetPage(lp.pages[z_level + 1]));
    WBoxInternalView parent(data, &params_);
    z_lo =
        parent.ChildRangeLo(static_cast<uint16_t>(lp.entries[z_level + 1]));
  }

  std::vector<ChildInfo> leaves;
  BOXES_RETURN_IF_ERROR(CollectLeaves(z_page, z_level, &leaves));
  BOXES_RETURN_IF_ERROR(RepairLeafSequence(&leaves));
  BOXES_RETURN_IF_ERROR(FreeInternalNodes(z_page, z_level));

  if (at_root) {
    if (leaves.size() == 1) {
      root_ = leaves[0].page;
      height_ = 1;
      BOXES_RETURN_IF_ERROR(AssignRanges(root_, 0, 0, /*fix_pairs=*/true));
    } else {
      ChildInfo top;
      uint32_t top_level = 0;
      BOXES_RETURN_IF_ERROR(
          BuildInternalLevels(std::move(leaves), 0, &top, &top_level));
      root_ = top.page;
      height_ = top_level + 1;
      BOXES_RETURN_IF_ERROR(
          AssignRanges(root_, top_level, 0, /*fix_pairs=*/true));
    }
    return Status::OK();
  }

  ChildInfo top;
  BOXES_RETURN_IF_ERROR(
      BuildSubtreeAtLevel(std::move(leaves), 0, z_level, z_lo, &top));
  BOXES_ASSIGN_OR_RETURN(uint8_t* data,
                         cache_->GetPageForWrite(lp.pages[z_level + 1]));
  WBoxInternalView parent(data, &params_);
  const uint16_t e = static_cast<uint16_t>(lp.entries[z_level + 1]);
  parent.set_child(e, top.page);
  parent.set_weight(e, top.weight);
  parent.set_size(e, options_.maintain_ordinal ? top.live : 0);
  return Status::OK();
}

}  // namespace boxes
