#include "core/ordpath/ordpath.h"

#include <algorithm>
#include <cstring>

#include "util/coding.h"

namespace boxes {

namespace {

constexpr size_t kLinkBytes = 16;  // pred + succ
constexpr size_t kLenBytes = 4;

/// A record must fit one page; shrink the label budget on small pages.
OrdpathOptions ClampToPage(OrdpathOptions options, size_t page_size) {
  const size_t room = page_size - kLinkBytes - kLenBytes;
  if (options.max_label_bytes > room) {
    options.max_label_bytes = static_cast<uint32_t>(room);
  }
  return options;
}

}  // namespace

OrdpathScheme::OrdpathScheme(PageCache* cache, OrdpathOptions options)
    : cache_(cache),
      options_(ClampToPage(options, cache->page_size())),
      lidf_(cache,
            kLinkBytes + kLenBytes + options_.max_label_bytes) {
  BOXES_CHECK(options_.max_label_bytes >= 16);
}

OrdpathScheme::~OrdpathScheme() = default;

std::vector<uint64_t> OrdpathScheme::Between(
    const std::vector<uint64_t>& a, const std::vector<uint64_t>& b) {
  // Labels compare like fixed-point fractions: digit-wise, with the
  // shorter label padded by virtual 0 digits. Together with the invariant
  // that no stored label ends in 0, this order coincides with
  // Label::Compare's prefix-first order, while staying DENSE (prefix-first
  // alone has empty gaps such as (x, x+[0])).
  //
  // Classic fractional-indexing midpoint: walk digits; when the upper
  // bound is exactly one above the lower digit, either stop just under the
  // upper bound (if it continues) or commit the lower digit and treat the
  // rest as unbounded above.
  std::vector<uint64_t> result;
  bool b_infinite = b.empty();
  for (size_t i = 0;; ++i) {
    const uint64_t av = i < a.size() ? a[i] : 0;
    if (b_infinite) {
      result.push_back(av + 1);
      return result;
    }
    const uint64_t bv = i < b.size() ? b[i] : 0;
    if (av == bv) {
      result.push_back(av);
      continue;
    }
    // av < bv at the first difference (contract: a < b padded).
    if (bv >= av + 2) {
      result.push_back(av + 1);  // fits strictly between the digits
      return result;
    }
    // bv == av + 1.
    if (i + 1 < b.size()) {
      // b keeps going (and never ends in 0), so prefix+[bv] padded with
      // zeros is still strictly below b.
      result.push_back(bv);
      return result;
    }
    // Commit the lower digit; everything below b at this digit is now
    // bounded only by a's remaining digits.
    result.push_back(av);
    b_infinite = true;
  }
}

StatusOr<OrdpathScheme::Record> OrdpathScheme::ReadRecord(Lid lid) const {
  std::vector<uint8_t> payload(lidf_.payload_size());
  BOXES_RETURN_IF_ERROR(lidf_.Read(lid, payload.data()));
  Record record;
  record.pred = DecodeFixed64(payload.data());
  record.succ = DecodeFixed64(payload.data() + 8);
  const uint32_t encoded = DecodeFixed32(payload.data() + kLinkBytes);
  if (encoded > options_.max_label_bytes) {
    return Status::Corruption("ORDPATH label length out of bounds");
  }
  const uint8_t* cursor = payload.data() + kLinkBytes + kLenBytes;
  const uint8_t* limit = cursor + encoded;
  while (cursor < limit) {
    uint64_t component;
    if (!DecodeVarint64(&cursor, limit, &component)) {
      return Status::Corruption("ORDPATH label varint truncated");
    }
    record.components.push_back(component);
  }
  return record;
}

Status OrdpathScheme::WriteRecord(Lid lid, const Record& record) {
  std::vector<uint8_t> payload(lidf_.payload_size(), 0);
  EncodeFixed64(payload.data(), record.pred);
  EncodeFixed64(payload.data() + 8, record.succ);
  uint8_t* cursor = payload.data() + kLinkBytes + kLenBytes;
  const uint8_t* base = cursor;
  for (uint64_t component : record.components) {
    if (static_cast<size_t>(cursor - base) + 10 >
        options_.max_label_bytes) {
      return Status::ResourceExhausted(
          "ORDPATH label exceeds " +
          std::to_string(options_.max_label_bytes) +
          " bytes (the unbounded-growth failure mode)");
    }
    cursor += EncodeVarint64(cursor, component);
  }
  const uint32_t encoded = static_cast<uint32_t>(cursor - base);
  EncodeFixed32(payload.data() + kLinkBytes, encoded);
  max_encoded_bytes_ = std::max(max_encoded_bytes_, encoded);
  return lidf_.Write(lid, payload.data());
}

Status OrdpathScheme::SetLinks(Lid lid, Lid pred, Lid succ) {
  BOXES_ASSIGN_OR_RETURN(Record record, ReadRecord(lid));
  record.pred = pred;
  record.succ = succ;
  return WriteRecord(lid, record);
}

StatusOr<Label> OrdpathScheme::Lookup(Lid lid) {
  BOXES_ASSIGN_OR_RETURN(const Record record, ReadRecord(lid));
  return Label::FromComponents(record.components);
}

Status OrdpathScheme::InsertBefore(Lid lid_new, Lid lid_old) {
  BOXES_ASSIGN_OR_RETURN(Record old_record, ReadRecord(lid_old));
  std::vector<uint64_t> pred_label;
  if (old_record.pred != kInvalidLid) {
    BOXES_ASSIGN_OR_RETURN(const Record pred_record,
                           ReadRecord(old_record.pred));
    pred_label = pred_record.components;
  }
  Record fresh;
  fresh.components = Between(pred_label, old_record.components);
  fresh.pred = old_record.pred;
  fresh.succ = lid_old;
  BOXES_RETURN_IF_ERROR(WriteRecord(lid_new, fresh));
  if (old_record.pred != kInvalidLid) {
    BOXES_ASSIGN_OR_RETURN(Record pred_record, ReadRecord(old_record.pred));
    pred_record.succ = lid_new;
    BOXES_RETURN_IF_ERROR(WriteRecord(old_record.pred, pred_record));
  } else {
    head_ = lid_new;
  }
  old_record.pred = lid_new;
  return WriteRecord(lid_old, old_record);
}

StatusOr<NewElement> OrdpathScheme::InsertElementBefore(Lid lid) {
  if (lidf_.live_records() == 0) {
    return Status::FailedPrecondition("ORDPATH scheme is empty");
  }
  BOXES_ASSIGN_OR_RETURN(const auto lids, lidf_.AllocatePair());
  BOXES_RETURN_IF_ERROR(InsertBefore(lids.second, lid));
  BOXES_RETURN_IF_ERROR(InsertBefore(lids.first, lids.second));
  return NewElement{lids.first, lids.second};
}

StatusOr<NewElement> OrdpathScheme::InsertFirstElement() {
  if (lidf_.live_records() != 0) {
    return Status::FailedPrecondition("ORDPATH scheme is not empty");
  }
  BOXES_ASSIGN_OR_RETURN(const auto lids, lidf_.AllocatePair());
  Record start;
  start.components = {1};
  start.succ = lids.second;
  Record end;
  end.components = {2};
  end.pred = lids.first;
  BOXES_RETURN_IF_ERROR(WriteRecord(lids.first, start));
  BOXES_RETURN_IF_ERROR(WriteRecord(lids.second, end));
  head_ = lids.first;
  tail_ = lids.second;
  return NewElement{lids.first, lids.second};
}

Status OrdpathScheme::Delete(Lid lid) {
  BOXES_ASSIGN_OR_RETURN(const Record record, ReadRecord(lid));
  if (record.pred != kInvalidLid) {
    BOXES_ASSIGN_OR_RETURN(Record pred_record, ReadRecord(record.pred));
    pred_record.succ = record.succ;
    BOXES_RETURN_IF_ERROR(WriteRecord(record.pred, pred_record));
  } else {
    head_ = record.succ;
  }
  if (record.succ != kInvalidLid) {
    BOXES_ASSIGN_OR_RETURN(Record succ_record, ReadRecord(record.succ));
    succ_record.pred = record.pred;
    BOXES_RETURN_IF_ERROR(WriteRecord(record.succ, succ_record));
  } else {
    tail_ = record.pred;
  }
  return lidf_.Free(lid);
}

Status OrdpathScheme::BulkLoad(const xml::Document& doc,
                               std::vector<NewElement>* lids_out) {
  if (lidf_.live_records() != 0) {
    return Status::FailedPrecondition(
        "BulkLoad requires an empty ORDPATH scheme");
  }
  std::vector<NewElement> lids(doc.element_count());
  std::vector<Lid> order;
  order.reserve(doc.tag_count());
  Status status = Status::OK();
  doc.ForEachTag([&](xml::ElementId id, bool is_start) {
    if (!status.ok()) {
      return;
    }
    if (is_start) {
      StatusOr<std::pair<Lid, Lid>> pair = lidf_.AllocatePair();
      if (!pair.ok()) {
        status = pair.status();
        return;
      }
      lids[id] = NewElement{pair->first, pair->second};
      order.push_back(pair->first);
    } else {
      order.push_back(lids[id].end);
    }
  });
  BOXES_RETURN_IF_ERROR(status);
  for (size_t i = 0; i < order.size(); ++i) {
    Record record;
    record.components = {i + 1};
    record.pred = i == 0 ? kInvalidLid : order[i - 1];
    record.succ = i + 1 == order.size() ? kInvalidLid : order[i + 1];
    BOXES_RETURN_IF_ERROR(WriteRecord(order[i], record));
  }
  head_ = order.empty() ? kInvalidLid : order.front();
  tail_ = order.empty() ? kInvalidLid : order.back();
  if (lids_out != nullptr) {
    *lids_out = std::move(lids);
  }
  return Status::OK();
}

Status OrdpathScheme::DeleteSubtree(Lid root_start, Lid root_end) {
  // Walk the list from root_start through root_end, unlinking the whole
  // range at once.
  BOXES_ASSIGN_OR_RETURN(const Record first, ReadRecord(root_start));
  BOXES_ASSIGN_OR_RETURN(const Record last, ReadRecord(root_end));
  // The list is label-ordered, so label order validates the range before
  // anything is freed.
  if (!(Label::FromComponents(first.components) <
        Label::FromComponents(last.components))) {
    return Status::InvalidArgument(
        "root_start must precede root_end in document order");
  }
  // Free everything in between (inclusive).
  const uint64_t initial_live = lidf_.live_records();
  Lid cursor = root_start;
  uint64_t guard = 0;
  for (;;) {
    BOXES_CHECK(++guard <= initial_live);
    BOXES_ASSIGN_OR_RETURN(const Record record, ReadRecord(cursor));
    const Lid next = record.succ;
    BOXES_RETURN_IF_ERROR(lidf_.Free(cursor));
    if (cursor == root_end) {
      break;
    }
    cursor = next;
  }
  if (first.pred != kInvalidLid) {
    BOXES_ASSIGN_OR_RETURN(Record pred_record, ReadRecord(first.pred));
    pred_record.succ = last.succ;
    BOXES_RETURN_IF_ERROR(WriteRecord(first.pred, pred_record));
  } else {
    head_ = last.succ;
  }
  if (last.succ != kInvalidLid) {
    BOXES_ASSIGN_OR_RETURN(Record succ_record, ReadRecord(last.succ));
    succ_record.pred = first.pred;
    BOXES_RETURN_IF_ERROR(WriteRecord(last.succ, succ_record));
  } else {
    tail_ = first.pred;
  }
  return Status::OK();
}

StatusOr<SchemeStats> OrdpathScheme::GetStats() {
  SchemeStats stats;
  stats.height = 0;
  stats.index_pages = 0;
  stats.lidf_pages = lidf_.page_count();
  stats.live_labels = lidf_.live_records();
  stats.max_label_bits = max_encoded_bytes_ * 8;
  return stats;
}

Status OrdpathScheme::CheckInvariants() {
  if (lidf_.live_records() == 0) {
    if (head_ != kInvalidLid || tail_ != kInvalidLid) {
      return Status::Corruption("empty ORDPATH scheme has list endpoints");
    }
    return Status::OK();
  }
  // Walk the list: links symmetric, labels strictly increasing, every live
  // record visited exactly once.
  uint64_t visited = 0;
  Lid cursor = head_;
  Lid previous = kInvalidLid;
  Label previous_label;
  while (cursor != kInvalidLid) {
    if (++visited > lidf_.live_records()) {
      return Status::Corruption("ORDPATH list does not terminate");
    }
    BOXES_ASSIGN_OR_RETURN(const Record record, ReadRecord(cursor));
    if (record.pred != previous) {
      return Status::Corruption("ORDPATH pred link mismatch");
    }
    const Label label = Label::FromComponents(record.components);
    if (previous != kInvalidLid && !(previous_label < label)) {
      return Status::Corruption("ORDPATH labels not strictly increasing");
    }
    previous_label = label;
    previous = cursor;
    cursor = record.succ;
  }
  if (previous != tail_) {
    return Status::Corruption("ORDPATH tail mismatch");
  }
  if (visited != lidf_.live_records()) {
    return Status::Corruption("ORDPATH list skips live records");
  }
  return Status::OK();
}

}  // namespace boxes
