#ifndef BOXES_STORAGE_PAGE_CACHE_H_
#define BOXES_STORAGE_PAGE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "storage/io_stats.h"
#include "storage/page_store.h"
#include "util/status.h"

namespace boxes {

/// Configuration for PageCache.
struct PageCacheOptions {
  /// If false (the paper's main experimental setting), the working set is
  /// dropped at the end of every operation: a small number of memory blocks
  /// is available *within* one operation for pages that are immediately
  /// revisited, and nothing survives across operations.
  ///
  /// If true, up to `capacity_pages` frames persist across operations with
  /// LRU replacement (the paper's "with caching" remark: the root tends to
  /// stay resident).
  bool retain_across_ops = false;
  uint64_t capacity_pages = 1024;
};

/// The single point through which all structures access pages, responsible
/// for the paper's I/O accounting.
///
/// Usage: the *caller* (workload runner, example program) brackets each
/// logical operation with BeginOp()/EndOp(); structures simply call
/// GetPage/GetPageForWrite/AllocatePage/FreePage. Within an operation, the
/// first touch of a page costs one read I/O and later touches are free; at
/// EndOp every distinct dirty page costs one write I/O and (without
/// retention) the working set is dropped.
///
/// If no operation is ever begun, the cache behaves as one unbounded
/// operation: all pages stay resident and dirty data is flushed by
/// FlushAll(). This is convenient for tests that only care about
/// correctness.
class PageCache {
 public:
  explicit PageCache(PageStore* store, PageCacheOptions options = {});
  ~PageCache();

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  size_t page_size() const { return store_->page_size(); }
  PageStore* store() const { return store_; }

  /// Marks the start of a logical operation. Requires no operation active.
  void BeginOp();

  /// Flushes dirty frames (counting write I/Os), drops the working set
  /// (unless retention is enabled), and ends the operation.
  Status EndOp();

  bool op_active() const { return op_active_; }

  /// Returns a pointer to the page's bytes, valid until EndOp() (or until
  /// FreePage of the same page). Counts one read I/O if the page is not in
  /// the working set / retained cache.
  StatusOr<uint8_t*> GetPage(PageId id);

  /// Like GetPage but also marks the page dirty.
  StatusOr<uint8_t*> GetPageForWrite(PageId id);

  /// Allocates a zeroed page, resident and dirty. No read I/O is charged;
  /// the write is charged when flushed. On success `*data` points at the
  /// frame bytes.
  StatusOr<PageId> AllocatePage(uint8_t** data);

  /// Frees a page; drops its frame without writing it back.
  Status FreePage(PageId id);

  /// Flushes all dirty frames and, without retention, drops all frames.
  /// Same as EndOp but legal with no active operation.
  Status FlushAll();

  /// Cumulative I/O counters.
  const IoStats& stats() const { return stats_; }

  /// Resets counters to zero (frames are untouched).
  void ResetStats() { stats_ = IoStats(); }

  /// Number of frames currently resident (for tests).
  size_t resident_pages() const { return frames_.size(); }

 private:
  struct Frame {
    std::unique_ptr<uint8_t[]> data;
    bool dirty = false;
    bool touched_this_op = false;
    // Position in lru_ (retained mode only).
    std::list<PageId>::iterator lru_pos;
    bool in_lru = false;
  };

  StatusOr<uint8_t*> GetInternal(PageId id, bool for_write);
  Status EvictIfNeeded();
  Status FlushFrame(PageId id, Frame* frame);
  void Touch(PageId id, Frame* frame);

  PageStore* store_;  // not owned
  const PageCacheOptions options_;
  std::unordered_map<PageId, Frame> frames_;
  std::list<PageId> lru_;  // front = most recent (retained mode only)
  IoStats stats_;
  bool op_active_ = false;
};

/// RAII bracket for one logical operation on a PageCache.
class IoScope {
 public:
  explicit IoScope(PageCache* cache) : cache_(cache) { cache_->BeginOp(); }
  ~IoScope() {
    if (cache_->op_active()) {
      BOXES_CHECK_OK(cache_->EndOp());
    }
  }

  IoScope(const IoScope&) = delete;
  IoScope& operator=(const IoScope&) = delete;

  /// Ends the operation early, propagating flush errors.
  Status End() { return cache_->EndOp(); }

 private:
  PageCache* cache_;
};

}  // namespace boxes

#endif  // BOXES_STORAGE_PAGE_CACHE_H_
