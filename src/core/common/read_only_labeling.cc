#include "core/common/read_only_labeling.h"

#include <utility>

namespace boxes {

StatusOr<ElementLabels> ReadOnlyLabeling::LookupElement(Lid start_lid,
                                                        Lid end_lid) {
  StatusOr<Label> start = Lookup(start_lid);
  if (!start.ok()) {
    return start.status();
  }
  StatusOr<Label> end = Lookup(end_lid);
  if (!end.ok()) {
    return end.status();
  }
  return ElementLabels{std::move(*start), std::move(*end)};
}

StatusOr<int> ReadOnlyLabeling::Compare(Lid a, Lid b) {
  StatusOr<Label> label_a = Lookup(a);
  if (!label_a.ok()) {
    return label_a.status();
  }
  StatusOr<Label> label_b = Lookup(b);
  if (!label_b.ok()) {
    return label_b.status();
  }
  return label_a->Compare(*label_b);
}

StatusOr<uint64_t> ReadOnlyLabeling::OrdinalLookup(Lid /*lid*/) {
  return Status::Unimplemented(name() + " does not maintain ordinal labels");
}

}  // namespace boxes
