#include "storage/retrying_store.h"

#include <algorithm>
#include <string>

namespace boxes {

RetryingPageStore::RetryingPageStore(PageStore* base,
                                     RetryingStoreOptions options)
    : base_(base), options_(options), rng_(options.seed) {
  BOXES_CHECK(options_.max_attempts >= 1);
  BOXES_CHECK(options_.backoff_multiplier >= 1.0);
}

void RetryingPageStore::Count(std::atomic<uint64_t> Counters::*field,
                              const char* metric, uint64_t delta) {
  (counters_.*field).fetch_add(delta, std::memory_order_relaxed);
  if (metrics_ != nullptr) {
    metrics_->IncrementCounter(metric, delta);
  }
}

void RetryingPageStore::CountPhase(const char* event) {
  if (metrics_ == nullptr || !phase_probe_) {
    return;
  }
  metrics_->IncrementCounter(std::string("retry.") +
                             IoPhaseName(phase_probe_()) + "." + event);
}

Status RetryingPageStore::RunWithRetry(const std::function<Status()>& op) {
  Count(&Counters::ops, "retry.ops");
  uint64_t backoff_us = options_.initial_backoff_us;
  uint64_t backoff_spent_us = 0;
  for (uint32_t attempt = 1;; ++attempt) {
    Count(&Counters::attempts, "retry.attempts");
    const Status status = op();
    if (status.ok()) {
      if (attempt > 1) {
        Count(&Counters::recovered, "retry.recovered");
      }
      return status;
    }
    if (!IsRetryableCode(status.code())) {
      Count(&Counters::permanent_errors, "retry.permanent_errors");
      return status;
    }
    // Jitter: a uniform draw from [backoff/2, backoff], seeded and thus
    // replayable (single-threaded runs; under concurrency the draw order —
    // and nothing else — depends on thread interleaving).
    uint64_t jittered;
    {
      std::lock_guard<std::mutex> lock(rng_mu_);
      jittered = backoff_us / 2 + rng_.Uniform(backoff_us / 2 + 1);
    }
    if (attempt >= options_.max_attempts ||
        backoff_spent_us + jittered > options_.op_deadline_us) {
      Count(&Counters::gave_up, "retry.gave_up");
      CountPhase("gave_up");
      return status;
    }
    Count(&Counters::retries, "retry.retries");
    CountPhase("retries");
    Count(&Counters::backoff_us, "retry.backoff_us", jittered);
    backoff_spent_us += jittered;
    if (options_.sleep) {
      options_.sleep(jittered);
    }
    backoff_us = std::min<uint64_t>(
        options_.max_backoff_us,
        static_cast<uint64_t>(static_cast<double>(backoff_us) *
                              options_.backoff_multiplier));
  }
}

StatusOr<PageId> RetryingPageStore::Allocate() {
  PageId id = kInvalidPageId;
  BOXES_RETURN_IF_ERROR(RunWithRetry([&]() -> Status {
    BOXES_ASSIGN_OR_RETURN(id, base_->Allocate());
    return Status::OK();
  }));
  return id;
}

Status RetryingPageStore::Free(PageId id) {
  return RunWithRetry([&] { return base_->Free(id); });
}

Status RetryingPageStore::Read(PageId id, uint8_t* buf) {
  return RunWithRetry([&] { return base_->Read(id, buf); });
}

Status RetryingPageStore::Write(PageId id, const uint8_t* buf) {
  return RunWithRetry([&] { return base_->Write(id, buf); });
}

Status RetryingPageStore::WriteUnjournaled(PageId id, const uint8_t* buf) {
  return RunWithRetry([&] { return base_->WriteUnjournaled(id, buf); });
}

Status RetryingPageStore::WriteTorn(PageId id, const uint8_t* buf,
                                    size_t prefix) {
  return base_->WriteTorn(id, buf, prefix);
}

Status RetryingPageStore::Sync() {
  return RunWithRetry([&] { return base_->Sync(); });
}

Status RetryingPageStore::CommitEpoch(uint64_t epoch) {
  return RunWithRetry([&] { return base_->CommitEpoch(epoch); });
}

}  // namespace boxes
