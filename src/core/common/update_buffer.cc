#include "core/common/update_buffer.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "core/common/epoch_guard.h"
#include "util/metrics.h"

namespace boxes {

UpdateBuffer::UpdateBuffer(LabelingScheme* scheme,
                           UpdateBufferOptions options)
    : scheme_(scheme), options_(options) {}

UpdateBuffer::~UpdateBuffer() {
  if (pending_.empty()) {
    return;
  }
  std::fprintf(stderr,
               "UpdateBuffer destroyed with %zu buffered unflushed op(s); "
               "they were never applied or made durable\n",
               pending_.size());
#ifndef NDEBUG
  std::abort();
#else
  MetricsRegistry* metrics =
      scheme_ != nullptr ? scheme_->metrics() : nullptr;
  if (metrics != nullptr) {
    metrics->IncrementCounter("buffer.dropped_ops", pending_.size());
  }
#endif
}

StatusOr<UpdateBuffer::Ticket> UpdateBuffer::Enqueue(BatchOp op) {
  const Ticket ticket = results_.size();
  results_.push_back(NewElement{});
  // The ticket rides inside the op: ApplyBatch's locality sort permutes the
  // batch, so positions in pending_ mean nothing after Flush — only the
  // user_tag read back from each post-sort op pairs results with tickets.
  op.user_tag = ticket;
  pending_.push_back(op);
  pending_tickets_.push_back(ticket);
  BOXES_RETURN_IF_ERROR(MaybeAutoFlush());
  return ticket;
}

Status UpdateBuffer::MaybeAutoFlush() {
  if (options_.auto_flush && pending_.size() >= options_.flush_threshold) {
    return Flush();
  }
  return Status::OK();
}

StatusOr<UpdateBuffer::Ticket> UpdateBuffer::InsertElementBefore(Lid before) {
  BatchOp op;
  op.kind = BatchOp::Kind::kInsertElementBefore;
  op.anchor = before;
  return Enqueue(op);
}

StatusOr<UpdateBuffer::Ticket> UpdateBuffer::InsertFirstElement() {
  BatchOp op;
  op.kind = BatchOp::Kind::kInsertFirstElement;
  return Enqueue(op);
}

StatusOr<UpdateBuffer::Ticket> UpdateBuffer::Delete(Lid lid) {
  BatchOp op;
  op.kind = BatchOp::Kind::kDelete;
  op.anchor = lid;
  return Enqueue(op);
}

StatusOr<UpdateBuffer::Ticket> UpdateBuffer::InsertSubtreeBefore(
    Lid before, const xml::Document* subtree,
    std::vector<NewElement>* lids_out) {
  if (subtree == nullptr) {
    return Status::InvalidArgument("InsertSubtreeBefore needs a document");
  }
  BatchOp op;
  op.kind = BatchOp::Kind::kInsertSubtreeBefore;
  op.anchor = before;
  op.subtree = subtree;
  op.subtree_lids = lids_out;
  return Enqueue(op);
}

StatusOr<UpdateBuffer::Ticket> UpdateBuffer::DeleteSubtree(Lid root_start,
                                                           Lid root_end) {
  BatchOp op;
  op.kind = BatchOp::Kind::kDeleteSubtree;
  op.anchor = root_start;
  op.anchor_end = root_end;
  return Enqueue(op);
}

Status UpdateBuffer::Flush() {
  if (pending_.empty()) {
    return Status::OK();
  }
  const uint64_t batch_size = pending_.size();
  MetricsRegistry* metrics = scheme_->metrics();
  const uint64_t syncs_before =
      metrics != nullptr ? metrics->CounterValue("file_store.sync_calls") : 0;
  BatchStats stats;
  if (durability_hook_) {
    // Fix the apply order now (ApplyBatch's own stable sort then acts as
    // the identity: same keys, already in order) and log it. Only after
    // the log is durable may the batch touch the structure — that is what
    // turns "Flush returned OK" into "these ops survive any crash". On
    // error everything stays pending and unacknowledged; Flush may be
    // retried once the fault clears (replay dedupes by batch id, so a
    // batch logged twice by such a retry applies once).
    scheme_->SortBatchByLocality(&pending_, &stats);
    BOXES_RETURN_IF_ERROR(durability_hook_(pending_));
  }
  Status status;
  {
    // The whole batch — application AND the group commit — is one write
    // epoch: readers admitted before see none of it, readers admitted
    // after see all of it, and nothing in between is ever observable.
    EpochWriteLock lock(&scheme_->epoch_guard());
    status = scheme_->ApplyBatch(&pending_, &stats);
    if (status.ok()) {
      // Publish results and retire the pending set before the hooks run,
      // so a hook may call Result() (e.g. to mirror the batch into a
      // reference model while readers are still locked out).
      for (const BatchOp& op : pending_) {
        results_[op.user_tag] = op.result;
      }
      pending_.clear();
      pending_tickets_.clear();
      if (commit_hook_) {
        status = commit_hook_();
      }
    }
    if (status.ok() && post_apply_hook_) {
      status = post_apply_hook_(scheme_->epoch_guard().epoch() + 1);
    }
  }
  pending_.clear();
  pending_tickets_.clear();
  if (!status.ok()) {
    return status;
  }
  ++batches_flushed_;
  ops_flushed_ += batch_size;
  if (metrics != nullptr) {
    metrics->IncrementCounter("batch.flushes");
    metrics->IncrementCounter("batch.ops", batch_size);
    metrics->IncrementCounter("batch.reordered_ops", stats.reordered);
    metrics->IncrementCounter("batch.coalesced_relabels",
                              stats.coalesced_relabels);
    metrics->RecordValue("batch.ops_per_flush", batch_size);
    metrics->RecordValue(
        "batch.sync_calls_per_flush",
        metrics->CounterValue("file_store.sync_calls") - syncs_before);
  }
  return Status::OK();
}

size_t UpdateBuffer::DiscardPending() {
  const size_t dropped = pending_.size();
  if (dropped == 0) {
    return 0;
  }
  std::fprintf(stderr,
               "UpdateBuffer discarding %zu buffered unflushed op(s) on "
               "caller request; they were never applied or made durable\n",
               dropped);
  MetricsRegistry* metrics =
      scheme_ != nullptr ? scheme_->metrics() : nullptr;
  if (metrics != nullptr) {
    metrics->IncrementCounter("buffer.dropped_ops", dropped);
  }
  pending_.clear();
  pending_tickets_.clear();
  return dropped;
}

StatusOr<NewElement> UpdateBuffer::Result(Ticket ticket) const {
  if (ticket >= results_.size()) {
    return Status::InvalidArgument("unknown update buffer ticket");
  }
  for (size_t i = 0; i < pending_tickets_.size(); ++i) {
    if (pending_tickets_[i] == ticket) {
      return Status::FailedPrecondition(
          "ticket's batch has not flushed yet");
    }
  }
  return results_[ticket];
}

}  // namespace boxes
