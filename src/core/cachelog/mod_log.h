#ifndef BOXES_CORE_CACHELOG_MOD_LOG_H_
#define BOXES_CORE_CACHELOG_MOD_LOG_H_

#include <cstdint>
#include <deque>

#include "core/common/label.h"

namespace boxes {

/// One logged modification effect (paper §6): either a range shift that can
/// be replayed onto a cached label, a range invalidation, or an ordinal
/// shift for ordinal-label caching.
struct LogEntry {
  enum class Kind { kShift, kInvalidate, kOrdinalShift };

  uint64_t timestamp = 0;
  Kind kind = Kind::kShift;
  Label lo;
  Label hi;
  int64_t delta = 0;
  uint64_t ordinal_from = 0;
};

/// Outcome of replaying logged effects onto a cached value.
enum class ReplayResult {
  kUsable,  // value updated in place; still valid
  kStale,   // too old or invalidated; caller must re-look it up
};

/// Adds `delta` to `*value` with overflow/underflow detection. Returns
/// false (leaving `*value` unspecified) when the shift would wrap — a
/// negative delta larger than the value, or a positive one past UINT64_MAX.
/// Replay treats a wrapping shift as staleness: the cached value cannot be
/// repaired and the caller must re-look it up.
inline bool CheckedShift(uint64_t* value, int64_t delta) {
  if (delta < 0) {
    // Two's-complement negation on the unsigned representation is well
    // defined even for INT64_MIN.
    const uint64_t magnitude = ~static_cast<uint64_t>(delta) + 1;
    if (magnitude > *value) {
      return false;
    }
    *value -= magnitude;
  } else {
    const uint64_t magnitude = static_cast<uint64_t>(delta);
    if (*value + magnitude < *value) {
      return false;
    }
    *value += magnitude;
  }
  return true;
}

/// Interface of a modification log usable by the caching layer. Two
/// implementations exist: ModificationLog (the paper's plain FIFO, O(k)
/// replay scans) and IndexedModificationLog (the paper's §8 future-work
/// item: an indexed store with O(log k) per relevant entry).
class ReplayLog {
 public:
  virtual ~ReplayLog() = default;

  virtual size_t capacity() const = 0;
  /// Current logical time: the timestamp of the latest modification.
  virtual uint64_t now() const = 0;

  /// Records a modification, assigning it the next timestamp and dropping
  /// the oldest entry beyond capacity.
  virtual void Append(LogEntry entry) = 0;

  void AppendShift(const Label& lo, const Label& hi, int64_t delta);
  void AppendInvalidate(const Label& lo, const Label& hi);
  void AppendOrdinalShift(uint64_t from, int64_t delta);

  /// Replays all modifications after `last_cached` onto `*label`.
  virtual ReplayResult Replay(uint64_t last_cached, Label* label) const = 0;

  /// Replays ordinal shifts after `last_cached` onto `*ordinal`. Value
  /// range invalidations do not affect ordinal labels.
  virtual ReplayResult ReplayOrdinal(uint64_t last_cached,
                                     uint64_t* ordinal) const = 0;
};

/// In-memory FIFO of the last k modifications to a labeled document
/// (paper §6, "Caching and logging approach").
///
/// The log assigns monotonically increasing timestamps. A cached value
/// carrying `last_cached = T` reflects all modifications with timestamp
/// <= T; it is usable iff every later modification is still in the log, in
/// which case those entries are replayed onto it in order.
///
/// Capacity 0 degenerates to the "basic caching approach": a single
/// last-modified timestamp, usable only if nothing changed since caching.
class ModificationLog : public ReplayLog {
 public:
  using ReplayResult = boxes::ReplayResult;  // historical spelling

  explicit ModificationLog(size_t capacity) : capacity_(capacity) {}

  size_t capacity() const override { return capacity_; }
  uint64_t now() const override { return clock_; }
  void Append(LogEntry entry) override;
  ReplayResult Replay(uint64_t last_cached, Label* label) const override;
  ReplayResult ReplayOrdinal(uint64_t last_cached,
                             uint64_t* ordinal) const override;

 private:
  bool CoversSince(uint64_t last_cached) const {
    // Entries (clock_ - entries_.size(), clock_] are present.
    return last_cached + entries_.size() >= clock_;
  }

  const size_t capacity_;
  uint64_t clock_ = 0;
  std::deque<LogEntry> entries_;
};

}  // namespace boxes

#endif  // BOXES_CORE_CACHELOG_MOD_LOG_H_
