#ifndef BOXES_XML_XMARK_H_
#define BOXES_XML_XMARK_H_

#include <cstdint>

#include "xml/document.h"

namespace boxes::xml {

/// Synthetic stand-in for the XMark benchmark document generator.
///
/// The paper's third experiment (§7) inserts the elements of an XMark
/// document (336,242 elements) in document order. Only the *tree shape*
/// matters for labeling; this generator reproduces the XMark DTD skeleton
/// (site → regions / categories / catgraph / people / open_auctions /
/// closed_auctions, with item / person / auction entities in XMark's
/// factor-1 proportions, nested descriptions, bidders, profiles, ...) and
/// grows entities round-robin until at least `target_elements` elements
/// exist. Deterministic in `seed`. Tree depth is 10–12, like real XMark.
Document MakeXmarkDocument(uint64_t target_elements, uint64_t seed);

}  // namespace boxes::xml

#endif  // BOXES_XML_XMARK_H_
