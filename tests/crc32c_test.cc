// CRC-32C against published reference vectors (RFC 3720 / iSCSI test
// patterns), plus the chaining property the page format relies on.

#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "util/crc32c.h"

namespace boxes {
namespace {

TEST(Crc32cTest, StandardVectors) {
  // "123456789" is the canonical check value for CRC-32C.
  EXPECT_EQ(Crc32c("123456789", 9), 0xe3069283u);
  // RFC 3720 B.4: 32 bytes of zeros.
  std::vector<uint8_t> zeros(32, 0x00);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8a9136aau);
  // RFC 3720 B.4: 32 bytes of 0xff.
  std::vector<uint8_t> ones(32, 0xff);
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62a8ab43u);
  // RFC 3720 B.4: 32 incrementing bytes 0x00..0x1f.
  std::vector<uint8_t> ascending(32);
  for (size_t i = 0; i < ascending.size(); ++i) {
    ascending[i] = static_cast<uint8_t>(i);
  }
  EXPECT_EQ(Crc32c(ascending.data(), ascending.size()), 0x46dd794eu);
}

TEST(Crc32cTest, EmptyInputIsZero) { EXPECT_EQ(Crc32c("", 0), 0u); }

TEST(Crc32cTest, ExtendChainsPartialBuffers) {
  const char* data = "the quick brown fox jumps over the lazy dog";
  const size_t n = 43;
  const uint32_t whole = Crc32c(data, n);
  for (size_t split = 0; split <= n; ++split) {
    const uint32_t chained =
        Crc32cExtend(Crc32c(data, split), data + split, n - split);
    EXPECT_EQ(chained, whole) << "split at " << split;
  }
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  std::vector<uint8_t> buf(128, 0x5a);
  const uint32_t clean = Crc32c(buf.data(), buf.size());
  for (size_t byte = 0; byte < buf.size(); byte += 17) {
    for (int bit = 0; bit < 8; ++bit) {
      buf[byte] ^= static_cast<uint8_t>(1u << bit);
      EXPECT_NE(Crc32c(buf.data(), buf.size()), clean);
      buf[byte] ^= static_cast<uint8_t>(1u << bit);
    }
  }
}

}  // namespace
}  // namespace boxes
