#include <memory>
#include <vector>

#include "core/bbox/bbox.h"
#include "core/cachelog/caching_store.h"
#include "core/cachelog/mod_log.h"
#include "core/naive/naive.h"
#include "core/wbox/wbox.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "util/random.h"
#include "xml/generators.h"

namespace boxes {
namespace {

using testing::TagOrderLids;
using testing::TestDb;

TEST(ModificationLogTest, ReplayAppliesShiftsInRange) {
  ModificationLog log(8);
  log.AppendShift(Label::FromScalar(10), Label::FromScalar(20), +2);
  log.AppendShift(Label::FromScalar(0), Label::FromScalar(5), -1);

  Label in_range = Label::FromScalar(15);
  EXPECT_EQ(log.Replay(0, &in_range), ModificationLog::ReplayResult::kUsable);
  EXPECT_EQ(in_range.scalar(), 17u);

  Label out_of_range = Label::FromScalar(30);
  EXPECT_EQ(log.Replay(0, &out_of_range),
            ModificationLog::ReplayResult::kUsable);
  EXPECT_EQ(out_of_range.scalar(), 30u);
}

TEST(ModificationLogTest, ReplaySkipsAlreadySeenEntries) {
  ModificationLog log(8);
  log.AppendShift(Label::FromScalar(0), Label::FromScalar(100), +1);
  const uint64_t t1 = log.now();
  log.AppendShift(Label::FromScalar(0), Label::FromScalar(100), +1);
  Label label = Label::FromScalar(50);
  EXPECT_EQ(log.Replay(t1, &label), ModificationLog::ReplayResult::kUsable);
  EXPECT_EQ(label.scalar(), 51u);  // only the second shift applied
}

TEST(ModificationLogTest, InvalidationMakesStale) {
  ModificationLog log(8);
  log.AppendInvalidate(Label::FromScalar(10), Label::FromScalar(20));
  Label inside = Label::FromScalar(12);
  EXPECT_EQ(log.Replay(0, &inside), ModificationLog::ReplayResult::kStale);
  Label outside = Label::FromScalar(25);
  EXPECT_EQ(log.Replay(0, &outside),
            ModificationLog::ReplayResult::kUsable);
}

TEST(ModificationLogTest, OverflowEvictsOldest) {
  ModificationLog log(2);
  log.AppendShift(Label::FromScalar(0), Label::FromScalar(9), +1);  // t=1
  log.AppendShift(Label::FromScalar(0), Label::FromScalar(9), +1);  // t=2
  log.AppendShift(Label::FromScalar(0), Label::FromScalar(9), +1);  // t=3
  Label label = Label::FromScalar(5);
  // Cached at t=0: entry 1 has been dropped -> stale.
  EXPECT_EQ(log.Replay(0, &label), ModificationLog::ReplayResult::kStale);
  // Cached at t=1: entries 2..3 are present.
  label = Label::FromScalar(5);
  EXPECT_EQ(log.Replay(1, &label), ModificationLog::ReplayResult::kUsable);
  EXPECT_EQ(label.scalar(), 7u);
}

TEST(ModificationLogTest, ZeroCapacityIsBasicCaching) {
  ModificationLog log(0);
  Label label = Label::FromScalar(5);
  EXPECT_EQ(log.Replay(log.now(), &label),
            ModificationLog::ReplayResult::kUsable);
  log.AppendShift(Label::FromScalar(0), Label::FromScalar(9), +1);
  EXPECT_EQ(log.Replay(0, &label), ModificationLog::ReplayResult::kStale);
  EXPECT_EQ(log.Replay(log.now(), &label),
            ModificationLog::ReplayResult::kUsable);
}

TEST(ModificationLogTest, OrdinalReplay) {
  ModificationLog log(4);
  log.AppendOrdinalShift(100, +2);
  log.AppendOrdinalShift(50, -1);
  uint64_t below = 40;
  EXPECT_EQ(log.ReplayOrdinal(0, &below),
            ModificationLog::ReplayResult::kUsable);
  EXPECT_EQ(below, 40u);
  uint64_t above = 200;
  EXPECT_EQ(log.ReplayOrdinal(0, &above),
            ModificationLog::ReplayResult::kUsable);
  EXPECT_EQ(above, 201u);
  // Value-range invalidations do not affect ordinals.
  log.AppendInvalidate(Label::FromScalar(0), Label::FromScalar(1000000));
  uint64_t ordinal = 10;
  EXPECT_EQ(log.ReplayOrdinal(log.now() - 1, &ordinal),
            ModificationLog::ReplayResult::kUsable);
}

TEST(ModificationLogTest, ShiftThatWouldWrapComponentIsStale) {
  // Regression: a negative delta larger than the label's last component
  // wrapped the unsigned component to a huge value instead of reporting
  // the cached value as unrepairable.
  ModificationLog log(8);
  log.AppendShift(Label::FromScalar(0), Label::FromScalar(100), -10);
  Label small = Label::FromScalar(5);
  EXPECT_EQ(log.Replay(0, &small), ModificationLog::ReplayResult::kStale);
  // A component large enough to absorb the delta still replays.
  Label large = Label::FromScalar(50);
  EXPECT_EQ(log.Replay(0, &large), ModificationLog::ReplayResult::kUsable);
  EXPECT_EQ(large.scalar(), 40u);
}

TEST(ModificationLogTest, OrdinalShiftThatWouldWrapIsStale) {
  ModificationLog log(8);
  log.AppendOrdinalShift(0, -10);
  uint64_t small = 5;
  EXPECT_EQ(log.ReplayOrdinal(0, &small),
            ModificationLog::ReplayResult::kStale);
  uint64_t large = 50;
  EXPECT_EQ(log.ReplayOrdinal(0, &large),
            ModificationLog::ReplayResult::kUsable);
  EXPECT_EQ(large, 40u);
}

TEST(ModificationLogTest, EntryExactlyAtEvictionAgeIsStillUsable) {
  // Staleness boundary at the log's capacity k: a value cached k entries
  // ago replays off the full window; one more append evicts the entry it
  // needs and tips it to stale.
  ModificationLog log(3);
  const uint64_t cached_at = log.now();
  for (int i = 0; i < 3; ++i) {
    log.AppendShift(Label::FromScalar(0), Label::FromScalar(100), +1);
  }
  Label label = Label::FromScalar(5);
  EXPECT_EQ(log.Replay(cached_at, &label),
            ModificationLog::ReplayResult::kUsable);
  EXPECT_EQ(label.scalar(), 8u);

  log.AppendShift(Label::FromScalar(0), Label::FromScalar(100), +1);
  label = Label::FromScalar(5);
  EXPECT_EQ(log.Replay(cached_at, &label),
            ModificationLog::ReplayResult::kStale);
  // A value re-cached one entry later sits exactly at age k again.
  label = Label::FromScalar(5);
  EXPECT_EQ(log.Replay(cached_at + 1, &label),
            ModificationLog::ReplayResult::kUsable);
  EXPECT_EQ(label.scalar(), 8u);
}

TEST(ModificationLogTest, InvalidatedThenRecachedReplaysAgain) {
  // An invalidation poisons only values cached before it; once the caller
  // refreshes (re-caches) at a later timestamp, replay works normally.
  ModificationLog log(8);
  log.AppendInvalidate(Label::FromScalar(10), Label::FromScalar(20));
  Label label = Label::FromScalar(12);
  EXPECT_EQ(log.Replay(0, &label), ModificationLog::ReplayResult::kStale);

  const uint64_t recached_at = log.now();
  log.AppendShift(Label::FromScalar(10), Label::FromScalar(20), +3);
  label = Label::FromScalar(12);
  EXPECT_EQ(log.Replay(recached_at, &label),
            ModificationLog::ReplayResult::kUsable);
  EXPECT_EQ(label.scalar(), 15u);
}

TEST(ModificationLogTest, ShiftLandingExactlyOnZeroIsUsable) {
  // Boundary partner of the wrap regression: a negative delta that takes
  // the component exactly to zero is legal; one further is a wrap.
  ModificationLog log(8);
  log.AppendShift(Label::FromScalar(0), Label::FromScalar(100), -5);
  Label exact = Label::FromScalar(5);
  EXPECT_EQ(log.Replay(0, &exact), ModificationLog::ReplayResult::kUsable);
  EXPECT_EQ(exact.scalar(), 0u);
  Label wraps = Label::FromScalar(4);
  EXPECT_EQ(log.Replay(0, &wraps), ModificationLog::ReplayResult::kStale);
}

TEST(ModificationLogTest, Int64MinShiftDeltaIsHandled) {
  // INT64_MIN cannot be negated in int64_t; the checked shift must not UB.
  ModificationLog log(8);
  log.AppendShift(Label::FromScalar(0), Label::FromScalar(UINT64_MAX),
                  INT64_MIN);
  Label label = Label::FromScalar(123);
  EXPECT_EQ(log.Replay(0, &label), ModificationLog::ReplayResult::kStale);
}

TEST(IndexedModificationLogTest, ShiftThatWouldWrapComponentIsStale) {
  // The indexed log shares the staleness rule so that both ReplayLog
  // implementations return identical results.
  IndexedModificationLog log(8);
  log.AppendShift(Label::FromScalar(0), Label::FromScalar(100), -10);
  Label small = Label::FromScalar(5);
  EXPECT_EQ(log.Replay(0, &small), ModificationLog::ReplayResult::kStale);
  Label large = Label::FromScalar(50);
  EXPECT_EQ(log.Replay(0, &large), ModificationLog::ReplayResult::kUsable);
  EXPECT_EQ(large.scalar(), 40u);

  log.AppendOrdinalShift(0, -10);
  uint64_t small_ordinal = 5;
  EXPECT_EQ(log.ReplayOrdinal(0, &small_ordinal),
            ModificationLog::ReplayResult::kStale);
}

// ---------------------------------------------------------------------------
// CachingLabelStore over real schemes

struct SchemeFactory {
  const char* name;
  std::unique_ptr<LabelingScheme> (*make)(PageCache*);
};

std::unique_ptr<LabelingScheme> MakeWBox(PageCache* cache) {
  return std::make_unique<WBox>(cache);
}
std::unique_ptr<LabelingScheme> MakeBBox(PageCache* cache) {
  return std::make_unique<BBox>(cache);
}
std::unique_ptr<LabelingScheme> MakeNaive(PageCache* cache) {
  return std::make_unique<NaiveScheme>(
      cache, NaiveOptions{.gap_bits = 8, .count_bits = 30});
}

class CachingStoreTest
    : public ::testing::TestWithParam<SchemeFactory> {};

/// The central §6 correctness property: after any update stream, a cached
/// lookup (replayed through the log or refreshed) returns exactly what a
/// direct scheme lookup returns.
TEST_P(CachingStoreTest, CachedLookupsAlwaysMatchDirectLookups) {
  TestDb db(/*page_size=*/1024);
  std::unique_ptr<LabelingScheme> scheme = GetParam().make(&db.cache);
  CachingLabelStore store(scheme.get(), /*log_capacity=*/16);

  const xml::Document doc = xml::MakeTwoLevelDocument(300);
  std::vector<NewElement> lids;
  ASSERT_OK(scheme->BulkLoad(doc, &lids));

  std::vector<CachedLabelRef> refs;
  refs.reserve(lids.size());
  for (const NewElement& e : lids) {
    refs.push_back(store.MakeRef(e.start));
  }
  Random rng(11);
  for (int round = 0; round < 40; ++round) {
    // A few updates...
    for (int u = 0; u < 3; ++u) {
      const size_t victim = 1 + rng.Uniform(lids.size() - 1);
      ASSERT_OK(
          scheme->InsertElementBefore(lids[victim].start).status());
    }
    // ... then reads through the cache, checked against direct lookups.
    for (int r = 0; r < 20; ++r) {
      const size_t index = rng.Uniform(refs.size());
      ASSERT_OK_AND_ASSIGN(const Label via_cache,
                           store.Lookup(&refs[index]));
      ASSERT_OK_AND_ASSIGN(const Label direct,
                           scheme->Lookup(lids[index].start));
      ASSERT_TRUE(via_cache == direct)
          << GetParam().name << " round " << round << " index " << index
          << ": cache=" << via_cache.ToString()
          << " direct=" << direct.ToString();
    }
  }
  // The log must have served a decent share without full lookups.
  EXPECT_GT(store.served_fresh() + store.served_replayed(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, CachingStoreTest,
    ::testing::Values(SchemeFactory{"wbox", MakeWBox},
                      SchemeFactory{"bbox", MakeBBox},
                      SchemeFactory{"naive", MakeNaive}),
    [](const ::testing::TestParamInfo<SchemeFactory>& info) {
      return std::string(info.param.name);
    });

TEST(CachingStoreIoTest, FreshCacheHitCostsZeroIo) {
  TestDb db;
  WBox wbox(&db.cache);
  CachingLabelStore store(&wbox, 16);
  const xml::Document doc = xml::MakeTwoLevelDocument(500);
  std::vector<NewElement> lids;
  ASSERT_OK(wbox.BulkLoad(doc, &lids));
  CachedLabelRef ref = store.MakeRef(lids[100].start);
  ASSERT_OK(store.Lookup(&ref).status());  // warms the cache
  ASSERT_OK(db.cache.FlushAll());
  db.cache.ResetStats();
  {
    IoScope scope(&db.cache);
    ASSERT_OK(store.Lookup(&ref).status());
  }
  EXPECT_EQ(db.cache.stats().total(), 0u);
  EXPECT_EQ(store.served_fresh(), 1u);
}

TEST(CachingStoreIoTest, ReplayedLookupCostsZeroIo) {
  TestDb db;
  WBox wbox(&db.cache);
  CachingLabelStore store(&wbox, 64);
  const xml::Document doc = xml::MakeTwoLevelDocument(500);
  std::vector<NewElement> lids;
  ASSERT_OK(wbox.BulkLoad(doc, &lids));
  CachedLabelRef ref = store.MakeRef(lids[400].start);
  ASSERT_OK(store.Lookup(&ref).status());
  // A leaf-local insert far before the cached label shifts it by +2; the
  // log replays the effect without touching a page.
  ASSERT_OK(wbox.InsertElementBefore(lids[400].start).status());
  ASSERT_OK(db.cache.FlushAll());
  db.cache.ResetStats();
  {
    IoScope scope(&db.cache);
    ASSERT_OK_AND_ASSIGN(const Label label, store.Lookup(&ref));
    ASSERT_OK_AND_ASSIGN(const Label direct, wbox.Lookup(lids[400].start));
    // Direct lookup inside the scope costs I/O; subtract it by comparing
    // values only.
    EXPECT_TRUE(label == direct);
  }
  EXPECT_EQ(store.served_replayed(), 1u);
}

TEST(CachingStoreTest, BasicCachingInvalidatesOnAnyChange) {
  TestDb db;
  WBox wbox(&db.cache);
  CachingLabelStore store(&wbox, /*log_capacity=*/0);
  const xml::Document doc = xml::MakeTwoLevelDocument(100);
  std::vector<NewElement> lids;
  ASSERT_OK(wbox.BulkLoad(doc, &lids));
  CachedLabelRef ref = store.MakeRef(lids[50].start);
  ASSERT_OK(store.Lookup(&ref).status());
  ASSERT_OK(store.Lookup(&ref).status());
  EXPECT_EQ(store.served_fresh(), 1u);
  ASSERT_OK(wbox.InsertElementBefore(lids[10].start).status());
  ASSERT_OK(store.Lookup(&ref).status());
  EXPECT_EQ(store.served_full(), 2u);  // initial fill + post-update refresh
}

TEST(CachingStoreTest, InvalidatedRefDoesFullFetchThenServesFreshAgain) {
  // Store-level invalidate -> re-cache cycle: a naive-k relabel
  // invalidates every cached label; the next lookup must pay a full fetch
  // (replay is not allowed to repair across an invalidation), after which
  // the refreshed reference serves fresh again.
  TestDb db;
  NaiveOptions options;
  options.gap_bits = 2;
  NaiveScheme naive(&db.cache, options);
  CachingLabelStore store(&naive, /*log_capacity=*/64);
  const xml::Document doc = xml::MakeTwoLevelDocument(100);
  std::vector<NewElement> lids;
  ASSERT_OK(naive.BulkLoad(doc, &lids));
  CachedLabelRef ref = store.MakeRef(lids[50].start);
  ASSERT_OK(store.Lookup(&ref).status());
  EXPECT_EQ(store.served_full(), 1u);

  // Concentrated inserts exhaust the 2-bit gap and force a relabel.
  for (int i = 0; i < 8; ++i) {
    ASSERT_OK(naive.InsertElementBefore(lids[50].start).status());
  }
  ASSERT_GT(naive.relabel_count(), 0u);

  ASSERT_OK_AND_ASSIGN(const Label refreshed, store.Lookup(&ref));
  EXPECT_EQ(store.served_full(), 2u);
  ASSERT_OK_AND_ASSIGN(const Label direct, naive.Lookup(lids[50].start));
  EXPECT_TRUE(refreshed == direct);

  const uint64_t fresh_before = store.served_fresh();
  ASSERT_OK(store.Lookup(&ref).status());
  EXPECT_EQ(store.served_fresh(), fresh_before + 1);
}

TEST(CachingStoreTest, OrdinalCaching) {
  TestDb db;
  WBoxOptions options;
  options.maintain_ordinal = true;
  WBox wbox(&db.cache, options);
  CachingLabelStore store(&wbox, 32);
  const xml::Document doc = xml::MakeTwoLevelDocument(200);
  std::vector<NewElement> lids;
  ASSERT_OK(wbox.BulkLoad(doc, &lids));
  const std::vector<Lid> order = TagOrderLids(doc, lids);

  CachedOrdinalRef ref;
  ref.lid = order[300];
  ASSERT_OK_AND_ASSIGN(uint64_t ordinal, store.OrdinalLookup(&ref));
  EXPECT_EQ(ordinal, 300u);
  // Insert an element before tag 100: ordinals >= 100 shift by +2.
  ASSERT_OK(wbox.InsertElementBefore(order[100]).status());
  ASSERT_OK_AND_ASSIGN(ordinal, store.OrdinalLookup(&ref));
  EXPECT_EQ(ordinal, 302u);
  EXPECT_GE(store.served_replayed(), 1u);
  // And the replayed value agrees with the scheme.
  ASSERT_OK_AND_ASSIGN(const uint64_t direct,
                       wbox.OrdinalLookup(order[300]));
  EXPECT_EQ(ordinal, direct);
}

}  // namespace
}  // namespace boxes
