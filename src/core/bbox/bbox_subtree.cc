#include <algorithm>
#include <unordered_set>
#include <vector>

#include "core/bbox/bbox.h"

namespace boxes {

// ---------------------------------------------------------------------------
// Ripping (paper §5, "Bulk loading and subtree insert/delete")

Status BBox::RipAt(PageId leaf_page, int slot, uint32_t levels,
                   RipResult* result) {
  BOXES_CHECK(levels >= 1 && levels < height_);
  PageId right_prev;

  // Level 0: split the leaf at the insertion point.
  if (slot == 0) {
    right_prev = leaf_page;  // the whole leaf belongs to the right half
    result->touched.push_back(leaf_page);
  } else {
    uint8_t* fresh_data = nullptr;
    BOXES_ASSIGN_OR_RETURN(const PageId fresh,
                           cache_->AllocatePage(&fresh_data));
    BBoxLeafView right(fresh_data, &params_);
    right.Init();
    {
      BOXES_ASSIGN_OR_RETURN(uint8_t* data,
                             cache_->GetPageForWrite(leaf_page));
      BBoxLeafView left(data, &params_);
      std::vector<uint64_t> moved;
      for (uint16_t i = static_cast<uint16_t>(slot); i < left.count(); ++i) {
        moved.push_back(left.lid(i));
      }
      left.MoveSuffixTo(static_cast<uint16_t>(slot), &right);
      BOXES_RETURN_IF_ERROR(FixMovedEntries(fresh, /*is_leaf=*/true, moved));
    }
    // Hook the new right leaf into the parent, after the left leaf.
    PageId parent;
    {
      BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(leaf_page));
      parent = BBoxNodeHeader(data).parent();
    }
    BOXES_CHECK(parent != kInvalidPageId);
    BOXES_RETURN_IF_ERROR(EnsureRoom(parent));
    {
      BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(leaf_page));
      parent = BBoxNodeHeader(data).parent();
    }
    BOXES_ASSIGN_OR_RETURN(uint8_t* parent_data,
                           cache_->GetPageForWrite(parent));
    BBoxInternalView parent_view(parent_data, &params_);
    const int index = parent_view.FindChild(leaf_page);
    BOXES_CHECK(index >= 0);
    {
      BOXES_ASSIGN_OR_RETURN(uint8_t* left_data, cache_->GetPage(leaf_page));
      parent_view.set_size(static_cast<uint16_t>(index),
                           BBoxLeafView(left_data, &params_).count());
      BOXES_ASSIGN_OR_RETURN(uint8_t* right_data, cache_->GetPage(fresh));
      BBoxLeafView right_view(right_data, &params_);
      parent_view.InsertAt(static_cast<uint16_t>(index + 1), fresh,
                           right_view.count());
      right_view.set_parent(parent);  // fresh page is dirty from allocation
    }
    result->touched.push_back(leaf_page);
    result->touched.push_back(fresh);
    right_prev = fresh;
  }

  // Levels 1..levels-1: split each ancestor at the boundary child.
  for (uint32_t level = 1; level < levels; ++level) {
    PageId node_page;
    {
      BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(right_prev));
      node_page = BBoxNodeHeader(data).parent();
    }
    BOXES_CHECK(node_page != kInvalidPageId);
    BOXES_ASSIGN_OR_RETURN(uint8_t* node_data,
                           cache_->GetPageForWrite(node_page));
    BBoxInternalView node(node_data, &params_);
    const int boundary = node.FindChild(right_prev);
    BOXES_CHECK(boundary >= 0);
    if (boundary == 0) {
      right_prev = node_page;  // whole node belongs to the right half
      result->touched.push_back(node_page);
      continue;
    }
    PageId grandparent;
    {
      BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(node_page));
      grandparent = BBoxNodeHeader(data).parent();
    }
    BOXES_CHECK(grandparent != kInvalidPageId);
    BOXES_RETURN_IF_ERROR(EnsureRoom(grandparent));
    {
      BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(node_page));
      grandparent = BBoxNodeHeader(data).parent();
    }
    uint8_t* fresh_data = nullptr;
    BOXES_ASSIGN_OR_RETURN(const PageId fresh,
                           cache_->AllocatePage(&fresh_data));
    BBoxInternalView right(fresh_data, &params_);
    right.Init(static_cast<uint8_t>(level));
    {
      BOXES_ASSIGN_OR_RETURN(uint8_t* data,
                             cache_->GetPageForWrite(node_page));
      BBoxInternalView left(data, &params_);
      std::vector<uint64_t> moved;
      for (uint16_t i = static_cast<uint16_t>(boundary); i < left.count();
           ++i) {
        moved.push_back(left.child(i));
      }
      left.MoveSuffixTo(static_cast<uint16_t>(boundary), &right);
      BOXES_RETURN_IF_ERROR(
          FixMovedEntries(fresh, /*is_leaf=*/false, moved));
      right.set_parent(grandparent);
    }
    BOXES_ASSIGN_OR_RETURN(uint8_t* gp_data,
                           cache_->GetPageForWrite(grandparent));
    BBoxInternalView gp(gp_data, &params_);
    const int gp_index = gp.FindChild(node_page);
    BOXES_CHECK(gp_index >= 0);
    {
      BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(node_page));
      gp.set_size(static_cast<uint16_t>(gp_index),
                  BBoxInternalView(data, &params_).SizeSum());
      BOXES_ASSIGN_OR_RETURN(uint8_t* fresh2, cache_->GetPage(fresh));
      gp.InsertAt(static_cast<uint16_t>(gp_index + 1), fresh,
                  BBoxInternalView(fresh2, &params_).SizeSum());
    }
    result->touched.push_back(node_page);
    result->touched.push_back(fresh);
    right_prev = fresh;
  }
  result->right_top = right_prev;
  return Status::OK();
}

Status BBox::RepairCandidates(const std::vector<PageId>& candidates) {
  ScopedPhase io_phase(cache_, IoPhase::kRebalance);
  // Worklist repair: after rips, adjacent nodes can BOTH be underfull, so a
  // merge may still be below minimum and must be re-examined; merges also
  // shrink the parent. Every affected node is pushed back until stable.
  std::unordered_set<PageId> freed;
  std::vector<PageId> work(candidates.rbegin(), candidates.rend());
  uint32_t guard = 0;
  while (!work.empty()) {
    BOXES_CHECK(++guard < 100000);
    const PageId cur = work.back();
    work.pop_back();
    if (freed.count(cur) != 0 || cur == root_) {
      continue;
    }
    BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(cur));
    BBoxNodeHeader header(data);
    const bool is_leaf = header.node_type() == BBoxNodeHeader::kLeafType;
    const uint16_t count = header.count();
    const PageId parent = header.parent();
    if (count == 0) {
      // Remove an emptied node entirely.
      BOXES_ASSIGN_OR_RETURN(uint8_t* parent_data,
                             cache_->GetPageForWrite(parent));
      BBoxInternalView parent_view(parent_data, &params_);
      const int index = parent_view.FindChild(cur);
      BOXES_CHECK(index >= 0);
      parent_view.RemoveAt(static_cast<uint16_t>(index));
      BOXES_RETURN_IF_ERROR(cache_->FreePage(cur));
      freed.insert(cur);
      NoteReorganization(parent, 0, parent_view.level());
      work.push_back(parent);
      continue;
    }
    const uint64_t min = is_leaf ? params_.LeafMin() : params_.InternalMin();
    if (count >= min) {
      continue;
    }
    BOXES_ASSIGN_OR_RETURN(uint8_t* parent_data, cache_->GetPage(parent));
    BBoxInternalView parent_view(parent_data, &params_);
    if (parent_view.count() < 2) {
      // Lone child: nothing to borrow from. Collapse or repair the parent
      // first, then revisit this node.
      if (parent == root_) {
        std::vector<PageId> collapsed;
        BOXES_RETURN_IF_ERROR(CollapseRootIfNeeded(&collapsed));
        freed.insert(collapsed.begin(), collapsed.end());
        if (cur != root_) {
          work.push_back(cur);
        }
      } else {
        work.push_back(cur);
        work.push_back(parent);
      }
      continue;
    }
    const int index = parent_view.FindChild(cur);
    BOXES_CHECK(index >= 0);
    const uint16_t left_idx =
        static_cast<uint16_t>(index > 0 ? index - 1 : index);
    const PageId left_page = parent_view.child(left_idx);
    bool merged = false;
    PageId freed_page = kInvalidPageId;
    BOXES_RETURN_IF_ERROR(
        MergeOrRedistribute(parent, left_idx, &merged, &freed_page));
    if (freed_page != kInvalidPageId) {
      freed.insert(freed_page);
    }
    if (merged) {
      // The merged survivor may still be underfull; so may the parent.
      work.push_back(parent);
      if (freed.count(left_page) == 0) {
        work.push_back(left_page);
      }
    }
  }
  return CollapseRootIfNeeded();
}

Status BBox::RecomputeSizesUpward(PageId page) {
  ScopedPhase io_phase(cache_, IoPhase::kRebalance);
  if (!options_.ordinal) {
    return Status::OK();
  }
  PageId child = page;
  for (;;) {
    BOXES_ASSIGN_OR_RETURN(uint8_t* child_data, cache_->GetPage(child));
    const PageId parent = BBoxNodeHeader(child_data).parent();
    if (parent == kInvalidPageId) {
      return Status::OK();
    }
    uint64_t size;
    if (BBoxNodeType(child_data) == BBoxNodeHeader::kLeafType) {
      size = BBoxLeafView(child_data, &params_).count();
    } else {
      size = BBoxInternalView(child_data, &params_).SizeSum();
    }
    BOXES_ASSIGN_OR_RETURN(uint8_t* parent_data,
                           cache_->GetPageForWrite(parent));
    BBoxInternalView parent_view(parent_data, &params_);
    const int index = parent_view.FindChild(child);
    if (index < 0) {
      return Status::Corruption("back-link not mirrored by a child entry");
    }
    parent_view.set_size(static_cast<uint16_t>(index), size);
    child = parent;
  }
}

// ---------------------------------------------------------------------------
// Subtree insertion

Status BBox::InsertSubtreeBefore(Lid before, const xml::Document& subtree,
                                 std::vector<NewElement>* lids_out) {
  if (subtree.empty()) {
    if (lids_out != nullptr) {
      lids_out->clear();
    }
    return Status::OK();
  }
  if (root_ == kInvalidPageId) {
    return BulkLoad(subtree, lids_out);
  }
  ScopedPhase io_phase(cache_, IoPhase::kBulkLoad);
  ScopedTimer timer(metrics_, name() + ".insert_subtree.us");
  op_reorg_ = Reorganization();
  PageId leaf_page;
  int slot;
  BOXES_RETURN_IF_ERROR(LocateLid(before, &leaf_page, &slot));
  uint64_t anchor_ordinal = 0;
  if (options_.ordinal && listener_ != nullptr) {
    BOXES_RETURN_IF_ERROR(
        AdjustPathSizes(leaf_page, slot, 0, &anchor_ordinal));
  }
  std::vector<FlatRecord> records;
  BOXES_RETURN_IF_ERROR(FlattenDocument(subtree, &records, lids_out));
  const uint64_t n_new = records.size();

  // Fast path: everything fits into the anchor leaf.
  {
    BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(leaf_page));
    BBoxLeafView leaf(data, &params_);
    if (leaf.count() + n_new <= params_.leaf_capacity) {
      std::vector<uint64_t> prefix;
      if (listener_ != nullptr) {
        BOXES_RETURN_IF_ERROR(PathComponents(leaf_page, &prefix));
      }
      const uint16_t count_before = leaf.count();
      BOXES_ASSIGN_OR_RETURN(uint8_t* wdata,
                             cache_->GetPageForWrite(leaf_page));
      BBoxLeafView wleaf(wdata, &params_);
      for (uint64_t j = 0; j < n_new; ++j) {
        wleaf.InsertAt(static_cast<uint16_t>(slot + j), records[j].lid);
        BOXES_RETURN_IF_ERROR(
            lidf_.WriteBlockPtr(records[j].lid, leaf_page));
      }
      live_labels_ += n_new;
      if (options_.ordinal) {
        BOXES_RETURN_IF_ERROR(AdjustPathSizes(
            leaf_page, slot, static_cast<int64_t>(n_new), nullptr));
        if (listener_ != nullptr) {
          listener_->OnOrdinalShift(anchor_ordinal,
                                    static_cast<int64_t>(n_new));
        }
      }
      EmitLeafShift(prefix, static_cast<uint64_t>(slot), count_before - 1,
                    static_cast<int64_t>(n_new));
      return Status::OK();
    }
  }

  // Build the grafted tree T' (sharing this structure's LIDF).
  std::vector<LevelNode> leaves;
  BOXES_RETURN_IF_ERROR(BuildLeaves(records, &leaves));
  PageId graft_root;
  uint32_t graft_height;
  BOXES_RETURN_IF_ERROR(
      BuildTree(std::move(leaves), 0, &graft_root, &graft_height));

  // The host must be strictly taller than T' so the rip leaves a slot for
  // T's root at level graft_height.
  while (height_ <= graft_height) {
    BOXES_RETURN_IF_ERROR(GrowRoot());
  }

  RipResult rip;
  BOXES_RETURN_IF_ERROR(RipAt(leaf_page, slot, graft_height, &rip));

  // Splice T' immediately before the right half.
  PageId gap_parent;
  {
    BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(rip.right_top));
    gap_parent = BBoxNodeHeader(data).parent();
  }
  BOXES_CHECK(gap_parent != kInvalidPageId);
  BOXES_RETURN_IF_ERROR(EnsureRoom(gap_parent));
  {
    BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(rip.right_top));
    gap_parent = BBoxNodeHeader(data).parent();
  }
  {
    BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPageForWrite(gap_parent));
    BBoxInternalView parent_view(data, &params_);
    const int index = parent_view.FindChild(rip.right_top);
    BOXES_CHECK(index >= 0);
    parent_view.InsertAt(static_cast<uint16_t>(index), graft_root, n_new);
    BOXES_ASSIGN_OR_RETURN(uint8_t* graft_data,
                           cache_->GetPageForWrite(graft_root));
    BBoxNodeHeader(graft_data).set_parent(gap_parent);
  }
  live_labels_ += n_new;
  // Ancestors above the gap parent gained n_new records.
  if (options_.ordinal) {
    PageId child = gap_parent;
    for (;;) {
      BOXES_ASSIGN_OR_RETURN(uint8_t* child_data, cache_->GetPage(child));
      const PageId parent = BBoxNodeHeader(child_data).parent();
      if (parent == kInvalidPageId) {
        break;
      }
      BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPageForWrite(parent));
      BBoxInternalView node(data, &params_);
      const int index = node.FindChild(child);
      BOXES_CHECK(index >= 0);
      node.set_size(static_cast<uint16_t>(index),
                    node.size(static_cast<uint16_t>(index)) + n_new);
      child = parent;
    }
  }

  // The graft root was built as a (fill-exempt) tree root but is now an
  // interior node, so it joins the repair set.
  std::vector<PageId> candidates = rip.touched;
  candidates.push_back(graft_root);
  BOXES_RETURN_IF_ERROR(RepairCandidates(candidates));

  // The rip/splice rearranged paths wholesale; invalidate conservatively.
  op_reorg_.any = true;
  op_reorg_.whole_tree = true;
  BOXES_RETURN_IF_ERROR(EmitTopmostInvalidation());
  if (options_.ordinal && listener_ != nullptr) {
    listener_->OnOrdinalShift(anchor_ordinal, static_cast<int64_t>(n_new));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Subtree deletion

Status BBox::DeleteSubtree(Lid root_start, Lid root_end) {
  if (root_ == kInvalidPageId) {
    return Status::FailedPrecondition("B-BOX is empty");
  }
  ScopedPhase io_phase(cache_, IoPhase::kBulkLoad);
  ScopedTimer timer(metrics_, name() + ".delete_subtree.us");
  op_reorg_ = Reorganization();
  PageId leaf_a;
  PageId leaf_b;
  int slot_a;
  int slot_b;
  BOXES_RETURN_IF_ERROR(LocateLid(root_start, &leaf_a, &slot_a));
  BOXES_RETURN_IF_ERROR(LocateLid(root_end, &leaf_b, &slot_b));
  uint64_t anchor_ordinal = 0;
  if (options_.ordinal && listener_ != nullptr) {
    BOXES_RETURN_IF_ERROR(
        AdjustPathSizes(leaf_a, slot_a, 0, &anchor_ordinal));
  }

  uint64_t removed = 0;

  if (leaf_a == leaf_b) {
    if (slot_a >= slot_b) {
      return Status::InvalidArgument(
          "root_start must precede root_end in document order");
    }
    std::vector<uint64_t> prefix;
    if (listener_ != nullptr) {
      BOXES_RETURN_IF_ERROR(PathComponents(leaf_a, &prefix));
    }
    BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPageForWrite(leaf_a));
    BBoxLeafView leaf(data, &params_);
    const uint16_t count_before = leaf.count();
    for (uint16_t i = static_cast<uint16_t>(slot_a);
         i <= static_cast<uint16_t>(slot_b); ++i) {
      BOXES_RETURN_IF_ERROR(lidf_.Free(leaf.lid(i)));
    }
    removed = static_cast<uint64_t>(slot_b - slot_a + 1);
    leaf.RemoveRange(static_cast<uint16_t>(slot_a),
                     static_cast<uint16_t>(slot_b));
    live_labels_ -= removed;
    if (options_.ordinal) {
      BOXES_RETURN_IF_ERROR(AdjustPathSizes(
          leaf_a, 0, -static_cast<int64_t>(removed), nullptr));
    }
    EmitLeafShift(prefix, static_cast<uint64_t>(slot_b) + 1,
                  count_before - 1, -static_cast<int64_t>(removed));
    if (leaf_a == root_) {
      if (leaf.count() == 0) {
        BOXES_RETURN_IF_ERROR(cache_->FreePage(root_));
        root_ = kInvalidPageId;
        height_ = 0;
      }
    } else {
      BOXES_RETURN_IF_ERROR(RepairCandidates({leaf_a}));
    }
    BOXES_RETURN_IF_ERROR(EmitTopmostInvalidation());
    if (options_.ordinal && listener_ != nullptr) {
      listener_->OnOrdinalShift(anchor_ordinal,
                                -static_cast<int64_t>(removed));
    }
    return Status::OK();
  }

  // Distinct leaves: gather the two root-to-leaf paths (leaf first).
  auto path_of = [&](PageId leaf) -> StatusOr<std::vector<PageId>> {
    std::vector<PageId> path{leaf};
    PageId cur = leaf;
    for (;;) {
      BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(cur));
      const PageId parent = BBoxNodeHeader(data).parent();
      if (parent == kInvalidPageId) {
        break;
      }
      path.push_back(parent);
      cur = parent;
    }
    return path;
  };
  BOXES_ASSIGN_OR_RETURN(const std::vector<PageId> path_a, path_of(leaf_a));
  BOXES_ASSIGN_OR_RETURN(const std::vector<PageId> path_b, path_of(leaf_b));
  BOXES_CHECK(path_a.size() == path_b.size());
  size_t lca_level = 0;
  while (lca_level < path_a.size() &&
         path_a[lca_level] != path_b[lca_level]) {
    ++lca_level;
  }
  BOXES_CHECK(lca_level > 0 && lca_level < path_a.size());
  {
    BOXES_ASSIGN_OR_RETURN(uint8_t* data,
                           cache_->GetPage(path_a[lca_level]));
    BBoxInternalView lca(data, &params_);
    const int ia = lca.FindChild(path_a[lca_level - 1]);
    const int ib = lca.FindChild(path_b[lca_level - 1]);
    BOXES_CHECK(ia >= 0 && ib >= 0);
    if (ia >= ib) {
      return Status::InvalidArgument(
          "root_start must precede root_end in document order");
    }
  }

  // 1. Suffix of leaf_a and prefix of leaf_b.
  {
    BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPageForWrite(leaf_a));
    BBoxLeafView leaf(data, &params_);
    for (uint16_t i = static_cast<uint16_t>(slot_a); i < leaf.count(); ++i) {
      BOXES_RETURN_IF_ERROR(lidf_.Free(leaf.lid(i)));
    }
    removed += leaf.count() - slot_a;
    if (static_cast<uint16_t>(slot_a) < leaf.count()) {
      leaf.RemoveRange(static_cast<uint16_t>(slot_a), leaf.count() - 1);
    }
  }
  {
    BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPageForWrite(leaf_b));
    BBoxLeafView leaf(data, &params_);
    for (uint16_t i = 0; i <= static_cast<uint16_t>(slot_b); ++i) {
      BOXES_RETURN_IF_ERROR(lidf_.Free(leaf.lid(i)));
    }
    removed += slot_b + 1;
    leaf.RemoveRange(0, static_cast<uint16_t>(slot_b));
  }

  // 2. Fully covered siblings along both paths below the LCA, and the
  //    children strictly between the boundary children at the LCA.
  for (size_t level = 1; level <= lca_level; ++level) {
    BOXES_ASSIGN_OR_RETURN(uint8_t* data,
                           cache_->GetPageForWrite(path_a[level]));
    BBoxInternalView node(data, &params_);
    if (level < lca_level) {
      const int index = node.FindChild(path_a[level - 1]);
      BOXES_CHECK(index >= 0);
      const uint16_t first = static_cast<uint16_t>(index + 1);
      if (first < node.count()) {
        for (uint16_t i = first; i < node.count(); ++i) {
          BOXES_RETURN_IF_ERROR(
              FreeSubtree(node.child(i), /*free_lids=*/true, &removed));
        }
        node.RemoveRange(first, node.count() - 1);
      }
    } else {
      const int ia = node.FindChild(path_a[level - 1]);
      const int ib = node.FindChild(path_b[level - 1]);
      BOXES_CHECK(ia >= 0 && ib > ia);
      if (ib - ia > 1) {
        for (int i = ia + 1; i < ib; ++i) {
          BOXES_RETURN_IF_ERROR(FreeSubtree(node.child(
                                    static_cast<uint16_t>(i)),
                                /*free_lids=*/true, &removed));
        }
        node.RemoveRange(static_cast<uint16_t>(ia + 1),
                         static_cast<uint16_t>(ib - 1));
      }
    }
  }
  for (size_t level = 1; level < lca_level; ++level) {
    BOXES_ASSIGN_OR_RETURN(uint8_t* data,
                           cache_->GetPageForWrite(path_b[level]));
    BBoxInternalView node(data, &params_);
    const int index = node.FindChild(path_b[level - 1]);
    BOXES_CHECK(index >= 0);
    if (index > 0) {
      for (uint16_t i = 0; i < static_cast<uint16_t>(index); ++i) {
        BOXES_RETURN_IF_ERROR(
            FreeSubtree(node.child(i), /*free_lids=*/true, &removed));
      }
      node.RemoveRange(0, static_cast<uint16_t>(index - 1));
    }
  }

  live_labels_ -= removed;
  BOXES_RETURN_IF_ERROR(RecomputeSizesUpward(leaf_a));
  BOXES_RETURN_IF_ERROR(RecomputeSizesUpward(leaf_b));

  // 3. Repair along both boundary paths, bottom-up.
  std::vector<PageId> candidates;
  for (size_t level = 0; level < path_a.size(); ++level) {
    candidates.push_back(path_a[level]);
    if (level < lca_level) {
      candidates.push_back(path_b[level]);
    }
  }
  BOXES_RETURN_IF_ERROR(RepairCandidates(candidates));

  op_reorg_.any = true;
  op_reorg_.whole_tree = true;
  BOXES_RETURN_IF_ERROR(EmitTopmostInvalidation());
  if (options_.ordinal && listener_ != nullptr) {
    listener_->OnOrdinalShift(anchor_ordinal,
                              -static_cast<int64_t>(removed));
  }
  return Status::OK();
}

}  // namespace boxes
