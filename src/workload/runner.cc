#include "workload/runner.h"

#include <chrono>

namespace boxes::workload {

Status MeasureOp(PageCache* cache, const std::function<Status()>& op,
                 RunStats* stats) {
  const IoStats before = cache->stats();
  const PhaseIoTable phase_before = cache->phase_stats();
  const auto start = std::chrono::steady_clock::now();
  cache->BeginOp();
  const Status status = op();
  BOXES_RETURN_IF_ERROR(cache->EndOp());
  BOXES_RETURN_IF_ERROR(status);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  stats->per_op_latency_us.Add(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
          .count()));
  const IoStats delta = cache->stats().Delta(before);
  stats->per_op_cost.Add(delta.total());
  stats->totals.reads += delta.reads;
  stats->totals.writes += delta.writes;
  const PhaseIoTable& phase_after = cache->phase_stats();
  for (size_t i = 0; i < kNumIoPhases; ++i) {
    stats->phase_totals[i].reads +=
        phase_after[i].reads - phase_before[i].reads;
    stats->phase_totals[i].writes +=
        phase_after[i].writes - phase_before[i].writes;
  }
  return Status::OK();
}

void ExportRunStats(const std::string& source, const RunStats& stats,
                    MetricsRegistry* registry) {
  if (registry == nullptr) {
    return;
  }
  registry->GetHistogram(source + ".op_io")->Merge(stats.per_op_cost);
  registry->GetHistogram(source + ".op.us")->Merge(stats.per_op_latency_us);
  registry->IncrementCounter(source + ".reads", stats.totals.reads);
  registry->IncrementCounter(source + ".writes", stats.totals.writes);
  registry->MergePhaseIo(source, stats.phase_totals);
}

Status UnmeasuredOp(PageCache* cache, const std::function<Status()>& op) {
  cache->BeginOp();
  const Status status = op();
  BOXES_RETURN_IF_ERROR(cache->EndOp());
  return status;
}

}  // namespace boxes::workload
