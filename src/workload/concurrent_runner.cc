#include "workload/concurrent_runner.h"

#include <atomic>
#include <chrono>
#include <deque>
#include <thread>

#include "core/common/epoch_guard.h"
#include "util/random.h"

namespace boxes::workload {

namespace {

/// How many writer-inserted elements may be pending before the writer
/// starts deleting the oldest instead of inserting more. Keeps the
/// structure size roughly stable over long runs.
constexpr size_t kMaxPendingInserts = 32;

}  // namespace

StatusOr<ConcurrentStats> RunConcurrent(LabelingScheme* scheme,
                                        PageCache* cache,
                                        const std::vector<Lid>& lids,
                                        const ConcurrentOptions& options) {
  if (lids.empty()) {
    return Status::InvalidArgument("concurrent run needs a probe set");
  }
  const uint64_t retries_before = scheme->epoch_guard().reader_retries();
  const uint64_t contention_before = cache->shard_contention();

  ConcurrentStats stats;
  if (options.writer_ops == 0 && options.drop_cache_every != 0) {
    // Read-only cold-cache run: drop once up front, before any reader can
    // hold a page pointer.
    BOXES_RETURN_IF_ERROR(cache->FlushAll());
    ++stats.cache_drops;
  }

  std::atomic<uint64_t> ok_count{0};
  std::atomic<uint64_t> not_found_count{0};
  std::atomic<uint64_t> error_count{0};
  std::atomic<uint64_t> cache_drop_count{0};
  std::atomic<size_t> readers_running{options.reader_threads};
  Status writer_status;  // written by the writer thread only, read after join

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> readers;
  readers.reserve(options.reader_threads);
  for (size_t t = 0; t < options.reader_threads; ++t) {
    readers.emplace_back([&, t] {
      Random rng(options.seed + t);
      for (uint64_t i = 0; i < options.lookups_per_thread; ++i) {
        const Lid lid = lids[rng.Uniform(lids.size())];
        const StatusOr<VersionedLabel> got = scheme->LookupShared(lid);
        if (got.ok()) {
          ok_count.fetch_add(1, std::memory_order_relaxed);
        } else if (got.status().code() == StatusCode::kNotFound) {
          not_found_count.fetch_add(1, std::memory_order_relaxed);
        } else {
          error_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
      readers_running.fetch_sub(1, std::memory_order_release);
    });
  }

  std::thread writer;
  if (options.writer_ops > 0) {
    writer = std::thread([&] {
      Random rng(options.seed ^ 0x9e3779b97f4a7c15ull);
      std::deque<NewElement> pending;
      for (uint64_t op = 0; op < options.writer_ops; ++op) {
        if (options.writer_stops_with_readers &&
            readers_running.load(std::memory_order_acquire) == 0) {
          break;
        }
        if (options.writer_pause_us > 0 && op > 0) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(options.writer_pause_us));
        }
        EpochWriteLock lock(&scheme->epoch_guard());
        if (pending.size() >= kMaxPendingInserts) {
          const NewElement victim = pending.front();
          pending.pop_front();
          Status status = scheme->Delete(victim.start);
          if (status.ok()) {
            status = scheme->Delete(victim.end);
          }
          if (!status.ok()) {
            writer_status = status;
            return;
          }
        } else {
          const Lid before = lids[rng.Uniform(lids.size())];
          StatusOr<NewElement> inserted = scheme->InsertElementBefore(before);
          if (!inserted.ok()) {
            writer_status = inserted.status();
            return;
          }
          pending.push_back(*inserted);
        }
        stats.writer_ops++;  // only this thread writes stats until join
        if (options.drop_cache_every != 0 &&
            (op + 1) % options.drop_cache_every == 0) {
          const Status status = cache->FlushAll();
          if (!status.ok()) {
            writer_status = status;
            return;
          }
          cache_drop_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (std::thread& t : readers) {
    t.join();
  }
  if (writer.joinable()) {
    writer.join();
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;

  if (!writer_status.ok()) {
    return writer_status;
  }

  stats.lookups = ok_count.load();
  stats.not_found = not_found_count.load();
  stats.errors = error_count.load();
  stats.cache_drops += cache_drop_count.load();
  stats.reader_retries =
      scheme->epoch_guard().reader_retries() - retries_before;
  stats.shard_contention = cache->shard_contention() - contention_before;
  stats.elapsed_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
          .count();
  stats.lookups_per_sec =
      stats.elapsed_s > 0
          ? static_cast<double>(stats.lookups) / stats.elapsed_s
          : 0.0;
  return stats;
}

void ExportConcurrentStats(const std::string& source,
                           const ConcurrentStats& stats,
                           MetricsRegistry* registry) {
  if (registry == nullptr) {
    return;
  }
  registry->IncrementCounter(source + ".lookups", stats.lookups);
  registry->IncrementCounter(source + ".not_found", stats.not_found);
  registry->IncrementCounter(source + ".errors", stats.errors);
  registry->IncrementCounter(source + ".writer_ops", stats.writer_ops);
  registry->IncrementCounter(source + ".cache_drops", stats.cache_drops);
  registry->IncrementCounter("concurrency.reader_retries",
                             stats.reader_retries);
  registry->IncrementCounter("cache.shard_contention",
                             stats.shard_contention);
  registry->RecordValue(source + ".lookups_per_sec",
                        static_cast<uint64_t>(stats.lookups_per_sec));
}

}  // namespace boxes::workload
