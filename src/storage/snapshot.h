#ifndef BOXES_STORAGE_SNAPSHOT_H_
#define BOXES_STORAGE_SNAPSHOT_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "core/common/label.h"
#include "core/common/read_only_labeling.h"
#include "lidf/lidf.h"
#include "util/status.h"

namespace boxes {

class LabelingScheme;

/// Immutable mmap-able snapshot image ("silo", DESIGN.md §4l).
///
/// A SnapshotWriter compiles the current labels of a labeled document into
/// a compact read-only image; a SnapshotReader memory-maps the image and
/// serves Lookup/OrdinalLookup lock-free, with zero PageCache traffic. The
/// format borrows libxmlb's hardening (SNIPPETS.md snippet 1): the header
/// records the exact expected file size (so truncation is detected before
/// any array is trusted) and an invalidation GUID naming this compile, and
/// the body carries a CRC32C.
///
/// On-disk layout, little-endian, all sections 8-byte aligned:
///
///   offset  size  field
///   ------  ----  -----------------------------------------------------
///        0     8  magic "BXSILO1\n"
///        8     4  version (1)
///       12     4  header_size (64)
///       16     8  expected_file_size (header + body, exact)
///       24     4  body CRC32C (bytes [64, expected_file_size))
///       28     4  flags (bit 0: image carries ordinals)
///       32     8  source_epoch (authority EpochGuard epoch at compile)
///       40    16  invalidation GUID
///       56     8  entry_count n
///       64        body:
///                   lid[n]            u64, strictly increasing
///                   label_offset[n+1] u64, offsets into the component pool
///                   ordinal[n]        u64, present iff flags bit 0
///                   component pool    u64 × label_offset[n]
///
/// Entry i's label is the components pool[label_offset[i]] ..
/// pool[label_offset[i+1]) — multi-component labels (B-BOX paths, naive-k
/// wide integers) serialize unchanged. Lookups binary-search the sorted
/// lid array with a branch-free lower bound.
inline constexpr uint32_t kSnapshotVersion = 1;
inline constexpr size_t kSnapshotHeaderSize = 64;
inline constexpr uint32_t kSnapshotFlagOrdinals = 1u << 0;

using SnapshotGuid = std::array<uint8_t, 16>;

/// Hex rendering of a GUID ("3f2a...").
std::string SnapshotGuidToString(const SnapshotGuid& guid);

/// A freshly generated (pseudo-random, never-repeating in practice) GUID.
SnapshotGuid GenerateSnapshotGuid();

struct SnapshotWriterOptions {
  /// EpochGuard epoch of the source scheme at compile time, recorded in the
  /// header for provenance.
  uint64_t source_epoch = 0;
  /// GUID stamped into the image; all-zero means "generate one".
  SnapshotGuid guid = {};
  /// Write granularity for the publish path. Small chunks multiply the
  /// crash sweep's injection points; the default is one syscall per 64 KiB.
  size_t write_chunk_bytes = 64 * 1024;
  /// Crash-injection hook: the publish path fails with kIoError after this
  /// many successful file operations (open/write/fsync/rename/...),
  /// leaving whatever partial on-disk state a real crash would. The
  /// default never fires.
  uint64_t fail_after_file_ops = UINT64_MAX;
};

struct SnapshotCompileStats {
  uint64_t entries = 0;
  uint64_t image_bytes = 0;
  /// File operations the publish path performed (the crash sweep sweeps
  /// its injection budget over exactly this count).
  uint64_t file_ops = 0;
  SnapshotGuid guid = {};
};

/// Compiles a labeled document into a snapshot image and publishes it
/// atomically: build to `<path>.tmp`, fsync, rename over `<path>`, fsync
/// the directory. A reader never observes a torn image — it sees the old
/// file or the new one, distinguished by the invalidation GUID.
class SnapshotWriter {
 public:
  explicit SnapshotWriter(SnapshotWriterOptions options = {});

  /// Serializes every live LID of `scheme` (which must expose a LIDF) with
  /// its current label — and ordinal, when the scheme maintains them —
  /// into an in-memory image. Read-only with respect to `scheme`; callers
  /// synchronize with writers (EpochReadLock) themselves.
  StatusOr<std::string> BuildImage(LabelingScheme* scheme);

  /// Durably publishes a built image to `path` via the temp-file + atomic
  /// rename protocol. On injected failure the partial temp file is left in
  /// place, exactly as a crash would.
  Status Publish(const std::string& image, const std::string& path);

  /// BuildImage + Publish, returning compile statistics.
  StatusOr<SnapshotCompileStats> CompileToFile(LabelingScheme* scheme,
                                               const std::string& path);

  /// File operations performed by publish calls so far.
  uint64_t file_ops() const { return file_ops_; }
  const SnapshotGuid& guid() const { return options_.guid; }

 private:
  /// Charges one file operation against the crash budget; the caller skips
  /// the real syscall when this fails.
  Status ChargeFileOp(const char* what);

  SnapshotWriterOptions options_;
  uint64_t file_ops_ = 0;
};

/// Serves a snapshot image. Open() validates the entire image up front —
/// magic, version, exact expected size, section arithmetic (with overflow
/// checks against forged counts), body CRC, lid monotonicity, offset
/// monotonicity — so the lookup hot path needs no bounds checks.
///
/// All lookups are const in effect, lock-free, and touch only the mapped
/// bytes: zero PageCache traffic. One instance may be shared by any number
/// of reader threads.
class SnapshotReader : public ReadOnlyLabeling {
 public:
  static constexpr size_t kNotFound = SIZE_MAX;

  /// Memory-maps `path` and validates it.
  static StatusOr<std::unique_ptr<SnapshotReader>> Open(
      const std::string& path);

  /// Adopts and validates an in-memory image (fuzzing, tests; heap-backed
  /// so ASan sees out-of-bounds reads that page-granular mmap would not).
  static StatusOr<std::unique_ptr<SnapshotReader>> OpenFromBuffer(
      std::string image);

  ~SnapshotReader() override;

  SnapshotReader(const SnapshotReader&) = delete;
  SnapshotReader& operator=(const SnapshotReader&) = delete;

  // ReadOnlyLabeling:
  std::string name() const override { return "silo"; }
  StatusOr<Label> Lookup(Lid lid) override;
  bool SupportsOrdinal() const override { return has_ordinals_; }
  StatusOr<uint64_t> OrdinalLookup(Lid lid) override;

  /// Index of `lid` in the entry array, or kNotFound. Branch-free binary
  /// search; the overlay's hot path.
  size_t FindIndex(Lid lid) const;

  /// Entry accessors by index (< entry_count()).
  Lid LidAt(size_t index) const { return lids_[index]; }
  Label LabelAt(size_t index) const;
  uint64_t OrdinalAt(size_t index) const { return ordinals_[index]; }

  uint64_t entry_count() const { return entry_count_; }
  uint64_t image_bytes() const { return size_; }
  uint64_t source_epoch() const { return source_epoch_; }
  const SnapshotGuid& guid() const { return guid_; }
  bool has_ordinals() const { return has_ordinals_; }

 private:
  SnapshotReader() = default;

  /// Parses + validates the image and wires the section pointers.
  Status Validate();

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  /// Non-empty when the image is heap-backed (OpenFromBuffer); otherwise
  /// data_ is an mmap to unmap.
  std::string owned_;
  bool mapped_ = false;

  uint64_t entry_count_ = 0;
  bool has_ordinals_ = false;
  uint64_t source_epoch_ = 0;
  SnapshotGuid guid_ = {};

  const uint64_t* lids_ = nullptr;
  const uint64_t* offsets_ = nullptr;
  const uint64_t* ordinals_ = nullptr;
  const uint64_t* pool_ = nullptr;
};

}  // namespace boxes

#endif  // BOXES_STORAGE_SNAPSHOT_H_
