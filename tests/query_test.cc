#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/bbox/bbox.h"
#include "core/wbox/wbox.h"
#include "gtest/gtest.h"
#include "query/structural_join.h"
#include "query/twig.h"
#include "test_util.h"
#include "util/random.h"
#include "xml/generators.h"
#include "xml/parser.h"
#include "xml/xmark.h"

namespace boxes::query {
namespace {

using boxes::testing::TestDb;

/// Ground truth by tree walking: all (a, d) pairs with a an ancestor of d.
uint64_t BruteForceJoin(const xml::Document& doc, const std::string& a_tag,
                        const std::string& d_tag) {
  uint64_t count = 0;
  for (xml::ElementId d = 0; d < doc.element_count(); ++d) {
    if (doc.element(d).tag != d_tag) {
      continue;
    }
    for (xml::ElementId up = doc.element(d).parent;
         up != xml::kInvalidElement; up = doc.element(up).parent) {
      if (doc.element(up).tag == a_tag) {
        ++count;
      }
    }
  }
  return count;
}

/// Ground truth twig matching by recursive tree walking.
bool SubtreeMatches(const xml::Document& doc, xml::ElementId root,
                    const TwigPattern& pattern);

bool HasMatchingDescendant(const xml::Document& doc, xml::ElementId root,
                           const TwigPattern& pattern) {
  for (xml::ElementId child : doc.element(root).children) {
    if (SubtreeMatches(doc, child, pattern) ||
        HasMatchingDescendant(doc, child, pattern)) {
      return true;
    }
  }
  return false;
}

bool SubtreeMatches(const xml::Document& doc, xml::ElementId root,
                    const TwigPattern& pattern) {
  if (doc.element(root).tag != pattern.tag) {
    return false;
  }
  for (const TwigPattern& child : pattern.children) {
    if (!HasMatchingDescendant(doc, root, child)) {
      return false;
    }
  }
  return true;
}

std::set<xml::ElementId> BruteForceTwigRoots(const xml::Document& doc,
                                             const TwigPattern& pattern) {
  std::set<xml::ElementId> roots;
  for (xml::ElementId id = 0; id < doc.element_count(); ++id) {
    if (SubtreeMatches(doc, id, pattern)) {
      roots.insert(id);
    }
  }
  return roots;
}

TEST(StructuralJoinTest, MatchesBruteForceOnXmark) {
  TestDb db;
  BBox bbox(&db.cache);
  const xml::Document doc = xml::MakeXmarkDocument(5000, 3);
  std::vector<NewElement> lids;
  ASSERT_OK(bbox.BulkLoad(doc, &lids));
  const std::vector<std::pair<std::string, std::string>> joins = {
      {"item", "text"},       {"regions", "item"},
      {"person", "interest"}, {"open_auction", "bidder"},
      {"site", "text"},       {"parlist", "parlist"}};
  for (const auto& [a_tag, d_tag] : joins) {
    ASSERT_OK_AND_ASSIGN(const std::vector<Interval> ancestors,
                         CollectIntervals(&bbox, doc, lids, a_tag));
    ASSERT_OK_AND_ASSIGN(const std::vector<Interval> descendants,
                         CollectIntervals(&bbox, doc, lids, d_tag));
    EXPECT_EQ(CountStructuralJoin(ancestors, descendants),
              BruteForceJoin(doc, a_tag, d_tag))
        << a_tag << "//" << d_tag;
  }
}

TEST(StructuralJoinTest, EmitsCorrectPairs) {
  // Tiny handcrafted document: <a><b><a><c/></a></b><c/></a>
  TestDb db;
  WBox wbox(&db.cache);
  ASSERT_OK_AND_ASSIGN(
      const xml::Document doc,
      xml::ParseDocument("<a><b><a><c/></a></b><c/></a>"));
  std::vector<NewElement> lids;
  ASSERT_OK(wbox.BulkLoad(doc, &lids));
  ASSERT_OK_AND_ASSIGN(const std::vector<Interval> as,
                       CollectIntervals(&wbox, doc, lids, "a"));
  ASSERT_OK_AND_ASSIGN(const std::vector<Interval> cs,
                       CollectIntervals(&wbox, doc, lids, "c"));
  std::set<std::pair<uint64_t, uint64_t>> pairs;
  StructuralJoin(as, cs, [&](const Interval& a, const Interval& c) {
    pairs.insert({a.handle, c.handle});
  });
  // Outer <a> (id 0) contains both <c>s (ids 3, 4); inner <a> (id 2)
  // contains only the first.
  EXPECT_EQ(pairs, (std::set<std::pair<uint64_t, uint64_t>>{
                       {0, 3}, {0, 4}, {2, 3}}));
}

TEST(StructuralJoinTest, EmptyInputs) {
  EXPECT_EQ(CountStructuralJoin({}, {}), 0u);
  Interval one{1, Label::FromScalar(1), Label::FromScalar(2)};
  EXPECT_EQ(CountStructuralJoin({one}, {}), 0u);
  EXPECT_EQ(CountStructuralJoin({}, {one}), 0u);
}

TEST(TwigParseTest, ParsesLinearPaths) {
  ASSERT_OK_AND_ASSIGN(const TwigPattern p,
                       ParseTwigPattern("site//item//text"));
  EXPECT_EQ(p.tag, "site");
  ASSERT_EQ(p.children.size(), 1u);
  EXPECT_EQ(p.children[0].tag, "item");
  ASSERT_EQ(p.children[0].children.size(), 1u);
  EXPECT_EQ(p.children[0].children[0].tag, "text");
}

TEST(TwigParseTest, ParsesBranches) {
  ASSERT_OK_AND_ASSIGN(
      const TwigPattern p,
      ParseTwigPattern("item[//mailbox][//incategory]//text"));
  EXPECT_EQ(p.tag, "item");
  ASSERT_EQ(p.children.size(), 3u);
  EXPECT_EQ(p.children[0].tag, "mailbox");
  EXPECT_EQ(p.children[1].tag, "incategory");
  EXPECT_EQ(p.children[2].tag, "text");
}

TEST(TwigParseTest, ParsesNestedBranches) {
  ASSERT_OK_AND_ASSIGN(
      const TwigPattern p,
      ParseTwigPattern("person[//profile[//interest]]//name"));
  EXPECT_EQ(p.tag, "person");
  ASSERT_EQ(p.children.size(), 2u);
  EXPECT_EQ(p.children[0].tag, "profile");
  ASSERT_EQ(p.children[0].children.size(), 1u);
  EXPECT_EQ(p.children[0].children[0].tag, "interest");
}

TEST(TwigParseTest, RejectsMalformedPatterns) {
  EXPECT_FALSE(ParseTwigPattern("").ok());
  EXPECT_FALSE(ParseTwigPattern("//item").ok());
  EXPECT_FALSE(ParseTwigPattern("item[").ok());
  EXPECT_FALSE(ParseTwigPattern("item[//]").ok());
  EXPECT_FALSE(ParseTwigPattern("item]").ok());
  EXPECT_FALSE(ParseTwigPattern("a b").ok());
}

TEST(TwigMatchTest, MatchesBruteForceOnXmark) {
  TestDb db;
  WBox wbox(&db.cache);
  const xml::Document doc = xml::MakeXmarkDocument(4000, 13);
  std::vector<NewElement> lids;
  ASSERT_OK(wbox.BulkLoad(doc, &lids));
  const std::vector<std::string> patterns = {
      "site//item//text",
      "item[//mailbox][//incategory]//description",
      "person[//profile[//interest]]",
      "open_auction[//bidder]//annotation//description",
      "parlist//parlist//text",
      "nonexistent//item",
  };
  for (const std::string& text : patterns) {
    ASSERT_OK_AND_ASSIGN(const TwigPattern pattern, ParseTwigPattern(text));
    ASSERT_OK_AND_ASSIGN(const std::vector<Interval> roots,
                         MatchTwig(pattern, &wbox, doc, lids));
    std::set<xml::ElementId> got;
    for (const Interval& interval : roots) {
      got.insert(interval.handle);
    }
    EXPECT_EQ(got, BruteForceTwigRoots(doc, pattern)) << text;
  }
}

TEST(TwigMatchTest, MatchesOnRandomDocuments) {
  Random rng(51);
  for (int trial = 0; trial < 10; ++trial) {
    TestDb db;
    BBox bbox(&db.cache);
    // Random documents with a tiny tag alphabet maximize twig overlap.
    xml::Document doc = xml::MakeRandomDocument(400, 6, 600 + trial);
    // Re-tag with a 3-letter alphabet.
    xml::Document retagged;
    std::vector<xml::ElementId> order = doc.PreorderIds();
    std::map<xml::ElementId, xml::ElementId> remap;
    for (xml::ElementId id : order) {
      const std::string tag(1, static_cast<char>('a' + rng.Uniform(3)));
      if (doc.element(id).parent == xml::kInvalidElement) {
        remap[id] = retagged.AddRoot(tag);
      } else {
        remap[id] = retagged.AddChild(remap[doc.element(id).parent], tag);
      }
    }
    std::vector<NewElement> lids;
    ASSERT_OK(bbox.BulkLoad(retagged, &lids));
    for (const std::string text :
         {"a//b//c", "a[//b]//c", "b[//a][//c]", "c//c"}) {
      ASSERT_OK_AND_ASSIGN(const TwigPattern pattern,
                           ParseTwigPattern(text));
      ASSERT_OK_AND_ASSIGN(const std::vector<Interval> roots,
                           MatchTwig(pattern, &bbox, retagged, lids));
      std::set<xml::ElementId> got;
      for (const Interval& interval : roots) {
        got.insert(interval.handle);
      }
      EXPECT_EQ(got, BruteForceTwigRoots(retagged, pattern))
          << text << " trial " << trial;
    }
  }
}

}  // namespace
}  // namespace boxes::query
