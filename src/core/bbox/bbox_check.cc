#include <functional>
#include <string>
#include <vector>

#include "core/bbox/bbox.h"

namespace boxes {

namespace {

Status Fail(const std::string& what, PageId page) {
  return Status::Corruption("B-BOX invariant violated at page " +
                            std::to_string(page) + ": " + what);
}

}  // namespace

/// Exhaustively verifies the structural invariants of §5: node layout,
/// back-link symmetry, fill bounds, level consistency, LIDF back-pointers,
/// and size-field sums (B-BOX-O).
Status BBox::CheckInvariants() {
  if (root_ == kInvalidPageId) {
    if (height_ != 0 || live_labels_ != 0) {
      return Status::Corruption("empty B-BOX has nonzero counters");
    }
    return Status::OK();
  }
  {
    BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(root_));
    if (BBoxNodeHeader(data).parent() != kInvalidPageId) {
      return Fail("root has a parent back-link", root_);
    }
  }

  // Recursive descent returning the record count below each node.
  std::function<StatusOr<uint64_t>(PageId, PageId, uint32_t, bool)> check =
      [&](PageId page, PageId expected_parent, uint32_t expected_level,
          bool is_root) -> StatusOr<uint64_t> {
    BOXES_ASSIGN_OR_RETURN(uint8_t* data, cache_->GetPage(page));
    BBoxNodeHeader header(data);
    if (header.level() != expected_level) {
      return Fail("level byte mismatch", page);
    }
    if (!is_root && header.parent() != expected_parent) {
      return Fail("back-link does not point at the parent", page);
    }
    const uint16_t n = header.count();
    if (header.node_type() == BBoxNodeHeader::kLeafType) {
      if (expected_level != 0) {
        return Fail("leaf not at level 0", page);
      }
      if (n > params_.leaf_capacity) {
        return Fail("leaf over capacity", page);
      }
      if (!is_root && n < params_.LeafMin()) {
        return Fail("leaf under minimum fill", page);
      }
      if (is_root && n == 0 && live_labels_ != 0) {
        return Fail("empty root leaf with live labels", page);
      }
      BBoxLeafView leaf(data, &params_);
      for (uint16_t i = 0; i < n; ++i) {
        const Lid lid = leaf.lid(i);
        if (!lidf_.IsLive(lid)) {
          return Fail("record LID " + std::to_string(lid) + " not live",
                      page);
        }
        BOXES_ASSIGN_OR_RETURN(const PageId back, lidf_.ReadBlockPtr(lid));
        if (back != page) {
          return Fail("LIDF pointer of LID " + std::to_string(lid) +
                          " does not point here",
                      page);
        }
      }
      return uint64_t{n};
    }

    if (header.node_type() != BBoxNodeHeader::kInternalType) {
      return Fail("unknown node type", page);
    }
    if (n > params_.internal_capacity) {
      return Fail("internal node over capacity", page);
    }
    if (!is_root && n < params_.InternalMin()) {
      return Fail("internal node under minimum fill", page);
    }
    if (is_root && n < 2) {
      return Fail("internal root with fewer than 2 children", page);
    }
    BBoxInternalView node(data, &params_);
    struct Entry {
      PageId child;
      uint64_t size;
    };
    std::vector<Entry> entries;
    entries.reserve(n);
    for (uint16_t i = 0; i < n; ++i) {
      entries.push_back({node.child(i), node.size(i)});
    }
    uint64_t total = 0;
    for (const Entry& entry : entries) {
      BOXES_ASSIGN_OR_RETURN(
          const uint64_t below,
          check(entry.child, page, expected_level - 1, false));
      if (options_.ordinal && below != entry.size) {
        return Fail("size field does not match child subtree", page);
      }
      total += below;
    }
    return total;
  };

  BOXES_ASSIGN_OR_RETURN(const uint64_t total,
                         check(root_, kInvalidPageId, height_ - 1, true));
  if (total != live_labels_) {
    return Status::Corruption("record total does not match live_labels");
  }
  if (lidf_.live_records() != live_labels_) {
    return Status::Corruption("LIDF live record count mismatch");
  }
  return Status::OK();
}

}  // namespace boxes
