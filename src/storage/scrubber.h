#ifndef BOXES_STORAGE_SCRUBBER_H_
#define BOXES_STORAGE_SCRUBBER_H_

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "storage/page_store.h"
#include "util/metrics.h"
#include "util/status.h"

namespace boxes {

/// Configuration of the online integrity scrubber.
struct ScrubberOptions {
  /// Allocated pages verified per Step() call. Small steps keep the
  /// scrubber's latency contribution between foreground operations
  /// bounded.
  uint64_t pages_per_step = 16;
  /// Run the registered structural checks at the end of every completed
  /// pass over the store (see AddStructuralCheck).
  bool structural_checks_each_pass = true;
};

/// Online integrity scrubber (DESIGN.md §4f): incrementally walks the
/// allocated pages of a PageStore *between* foreground operations,
/// re-reading each page so that the store's own verification (the CRC32C
/// frame check of FilePageStore, or any injected fault) gets a chance to
/// fire before a query stumbles onto the damage. Pages whose read reports
/// Corruption enter a quarantine set; pages that later read clean again
/// (rewritten, remapped, healed) leave it. Optional structural checks —
/// typically LabelingScheme::CheckInvariants, which reuses wbox_check /
/// bbox_check — run after each completed pass.
///
/// The scrubber reads through the raw PageStore, not the PageCache, so
/// scrub traffic never pollutes the paper's per-operation I/O accounting.
class Scrubber {
 public:
  /// Scrub activity counters (mirrored into an attached MetricsRegistry
  /// under "scrub.*").
  struct Counters {
    uint64_t steps = 0;             // Step() calls
    uint64_t pages_scanned = 0;     // page reads issued
    uint64_t passes_completed = 0;  // full sweeps over the store
    uint64_t corrupt_pages = 0;     // reads that reported Corruption
    uint64_t read_errors = 0;       // transient read errors (retried next pass)
    uint64_t pages_recovered = 0;   // quarantined pages that read clean again
    uint64_t structural_checks = 0; // structural check invocations
    uint64_t structural_failures = 0;
  };

  explicit Scrubber(PageStore* store, ScrubberOptions options = {});

  Scrubber(const Scrubber&) = delete;
  Scrubber& operator=(const Scrubber&) = delete;

  /// Registers a named whole-structure invariant check, run after each
  /// completed pass (and by ScrubAll). The callback must be safe to invoke
  /// between operations.
  void AddStructuralCheck(std::string name, std::function<Status()> check);

  /// Verifies the next batch of allocated pages (options.pages_per_step of
  /// them), wrapping around at the end of the store. Classification errors
  /// (corrupt or unreadable pages) are *recorded*, not returned: the
  /// scrubber's job is to keep scanning. The returned status is only
  /// non-OK for scrubber-level failures (a structural check that errored
  /// is reported through counters and last_structural_error()).
  Status Step();

  /// Runs Step() until one full pass over the store completes.
  Status ScrubPass();

  /// Pages currently quarantined as corrupt.
  const std::set<PageId>& quarantined() const { return quarantine_; }
  bool IsQuarantined(PageId id) const { return quarantine_.count(id) > 0; }

  /// Fraction of the store covered by the current pass, in [0, 1].
  double pass_progress() const;

  const Counters& counters() const { return counters_; }

  /// The most recent structural check failure; OK if none ever failed.
  const Status& last_structural_error() const {
    return last_structural_error_;
  }

  /// Attaches (or detaches, with nullptr) a metrics registry; scrub
  /// counters are incremented there under "scrub.*".
  void SetMetrics(MetricsRegistry* metrics) { metrics_ = metrics; }

 private:
  struct StructuralCheck {
    std::string name;
    std::function<Status()> check;
  };

  void Count(uint64_t Counters::*field, const char* metric,
             uint64_t delta = 1);
  /// Re-snapshots the allocator into free_set_ / snapshot_total_.
  void RefreshSnapshot();
  void RunStructuralChecks();

  PageStore* store_;  // not owned
  const ScrubberOptions options_;
  std::vector<uint8_t> scratch_;
  std::set<PageId> quarantine_;
  std::vector<StructuralCheck> checks_;
  // Allocator snapshot for the current pass.
  std::set<PageId> free_set_;
  uint64_t snapshot_total_ = 0;
  PageId cursor_ = 0;
  bool pass_open_ = false;
  Counters counters_;
  Status last_structural_error_;
  MetricsRegistry* metrics_ = nullptr;  // not owned
};

}  // namespace boxes

#endif  // BOXES_STORAGE_SCRUBBER_H_
