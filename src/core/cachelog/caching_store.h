#ifndef BOXES_CORE_CACHELOG_CACHING_STORE_H_
#define BOXES_CORE_CACHELOG_CACHING_STORE_H_

#include <cstdint>

#include <memory>

#include "core/cachelog/indexed_log.h"
#include "core/cachelog/mod_log.h"
#include "core/common/labeling_scheme.h"
#include "util/status.h"

namespace boxes {

/// An augmented label reference (paper §6): the immutable LID plus a cached
/// label value and the last-cached timestamp. These are what a query index
/// would store instead of raw label values.
struct CachedLabelRef {
  Lid lid = kInvalidLid;
  Label cached;
  uint64_t last_cached = 0;
  bool has_value = false;
};

/// Like CachedLabelRef but caching the ordinal label.
struct CachedOrdinalRef {
  Lid lid = kInvalidLid;
  uint64_t cached = 0;
  uint64_t last_cached = 0;
  bool has_value = false;
};

/// Eliminates the indirection cost of dynamic labels for read-heavy
/// workloads (paper §6). Attaches to a LabelingScheme as its
/// UpdateListener, logs every modification's effect on labels, and serves
/// lookups from cached references: a fresh cached value is returned with
/// ZERO I/O; a slightly stale one is repaired by replaying the logged
/// effects; only genuinely stale or invalidated references pay the
/// scheme's full lookup cost.
class CachingLabelStore : public UpdateListener {
 public:
  /// Which log data structure backs replay: the paper's plain FIFO (O(k)
  /// scans) or the indexed store of its §8 future work (O(log k) per
  /// relevant entry). Results are identical; only CPU cost differs.
  enum class LogImpl { kLinear, kIndexed };

  /// `log_capacity` = k, the number of modifications kept for replay;
  /// 0 = the basic single-timestamp caching approach.
  CachingLabelStore(LabelingScheme* scheme, size_t log_capacity,
                    LogImpl impl = LogImpl::kLinear);
  ~CachingLabelStore() override;

  CachingLabelStore(const CachingLabelStore&) = delete;
  CachingLabelStore& operator=(const CachingLabelStore&) = delete;

  LabelingScheme* scheme() const { return scheme_; }
  const ReplayLog& log() const { return *log_; }

  /// Creates a reference for a LID (unfilled cache; first Lookup pays).
  CachedLabelRef MakeRef(Lid lid) const;

  /// Returns the label, serving from / refreshing the reference's cache.
  StatusOr<Label> Lookup(CachedLabelRef* ref);

  /// Ordinal-label variant; requires the scheme to support ordinals.
  StatusOr<uint64_t> OrdinalLookup(CachedOrdinalRef* ref);

  // Statistics: how lookups were served.
  uint64_t served_fresh() const { return served_fresh_; }
  uint64_t served_replayed() const { return served_replayed_; }
  uint64_t served_full() const { return served_full_; }
  void ResetServeStats();

  // UpdateListener:
  void OnRangeShift(const Label& lo, const Label& hi, int64_t delta,
                    bool last_component_only) override;
  void OnInvalidateRange(const Label& lo, const Label& hi) override;
  void OnOrdinalShift(uint64_t from, int64_t delta) override;

 private:
  LabelingScheme* scheme_;  // not owned
  std::unique_ptr<ReplayLog> log_;
  uint64_t served_fresh_ = 0;
  uint64_t served_replayed_ = 0;
  uint64_t served_full_ = 0;
};

}  // namespace boxes

#endif  // BOXES_CORE_CACHELOG_CACHING_STORE_H_
