// Crash-recovery benchmark: quantifies what the crash-safety layer costs
// and what it buys.
//
// For each scheme, runs an insert/delete workload with periodic
// checkpoints against a checksummed file-backed store, then sweeps crash
// points (freezing the image after the N-th page write, tearing the write
// in flight) and reopens the database at each point. Reported per scheme:
// commit cost (page writes + fdatasyncs per checkpoint), recovery outcome
// distribution (recovered / clean error), checkpoint staleness at
// recovery, and mean reopen latency — which includes journal replay and
// checksum verification.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/common/update_buffer.h"
#include "storage/metadata_io.h"
#include "storage/wal.h"
#include "util/flags.h"
#include "util/random.h"

namespace boxes::bench {
namespace {

struct WorkloadState {
  std::vector<Lid> order;
  std::vector<std::pair<Lid, Lid>> elements;
};

template <typename Scheme>
Status WorkloadStep(Scheme* scheme, Random* rng, WorkloadState* state) {
  if (state->elements.empty()) {
    BOXES_ASSIGN_OR_RETURN(const NewElement first,
                           scheme->InsertFirstElement());
    state->order = {first.start, first.end};
    state->elements = {{first.start, first.end}};
    return Status::OK();
  }
  if (state->elements.size() > 4 && rng->Bernoulli(0.3)) {
    const size_t victim = rng->Uniform(state->elements.size());
    const auto [start, end] = state->elements[victim];
    BOXES_RETURN_IF_ERROR(scheme->Delete(start));
    BOXES_RETURN_IF_ERROR(scheme->Delete(end));
    state->elements.erase(state->elements.begin() +
                          static_cast<ptrdiff_t>(victim));
    auto& order = state->order;
    order.erase(std::remove_if(order.begin(), order.end(),
                               [s = start, e = end](Lid lid) {
                                 return lid == s || lid == e;
                               }),
                order.end());
    return Status::OK();
  }
  const size_t pos = rng->Uniform(state->order.size());
  BOXES_ASSIGN_OR_RETURN(const NewElement fresh,
                         scheme->InsertElementBefore(state->order[pos]));
  state->order.insert(state->order.begin() + static_cast<ptrdiff_t>(pos),
                      {fresh.start, fresh.end});
  state->elements.push_back({fresh.start, fresh.end});
  return Status::OK();
}

// Runs the workload; if `commit_writes` is given, records the wrapper's
// committed write count at each checkpoint commit (the commit schedule).
template <typename Scheme>
Status RunWorkload(PageCache* cache, Scheme* scheme,
                   FaultInjectionPageStore* wrapper, int64_t ops,
                   int64_t ops_per_checkpoint, uint64_t* checkpoints,
                   std::vector<uint64_t>* commit_writes) {
  BOXES_RETURN_IF_ERROR(InitializeSuperblock(cache));
  Random rng(0xbe4c);
  WorkloadState state;
  PageId previous_chain = kInvalidPageId;
  for (int64_t op = 1; op <= ops; ++op) {
    cache->BeginOp();
    const Status step = WorkloadStep(scheme, &rng, &state);
    const Status flush = cache->EndOp();
    BOXES_RETURN_IF_ERROR(step);
    BOXES_RETURN_IF_ERROR(flush);
    if (op % ops_per_checkpoint != 0) {
      continue;
    }
    BOXES_ASSIGN_OR_RETURN(const PageId scheme_head, scheme->Checkpoint());
    MetadataWriter writer;
    writer.PutU64(*checkpoints);
    writer.PutU64(scheme_head);
    BOXES_ASSIGN_OR_RETURN(const PageId head, writer.Finish(cache));
    BOXES_RETURN_IF_ERROR(CommitCheckpoint(cache, head));
    if (commit_writes != nullptr) {
      commit_writes->push_back(wrapper->writes_committed());
    }
    ++*checkpoints;
    if (previous_chain != kInvalidPageId) {
      BOXES_RETURN_IF_ERROR(FreeMetadataChain(cache, previous_chain));
      BOXES_RETURN_IF_ERROR(cache->FlushAll());
    }
    previous_chain = head;
  }
  return Status::OK();
}

struct SweepResult {
  uint64_t points = 0;
  uint64_t recovered = 0;
  uint64_t clean_errors = 0;
  uint64_t silent_corruptions = 0;  // must stay 0
  uint64_t staleness_sum = 0;       // checkpoints lost vs. newest committed
  double reopen_us_sum = 0;
  uint64_t journal_rollbacks = 0;
  uint64_t checksums_verified = 0;
};

bool IsCleanErrorCode(StatusCode code) {
  return code == StatusCode::kCorruption || code == StatusCode::kIoError ||
         code == StatusCode::kNotFound ||
         code == StatusCode::kInvalidArgument;
}

template <typename Scheme, typename Options>
void SweepScheme(const std::string& name, const Options& options,
                 size_t page_size, int64_t ops, int64_t ops_per_checkpoint,
                 int64_t crash_points, const std::string& db_dir) {
  const std::string ref_path = db_dir + "/crash_bench_" + name + "_ref.db";
  const std::string path = db_dir + "/crash_bench_" + name + ".db";
  std::remove(ref_path.c_str());
  std::remove((ref_path + ".journal").c_str());

  // Reference run: learns the total write count and the commit schedule.
  uint64_t total_writes = 0;
  uint64_t checkpoints = 0;
  uint64_t sync_calls = 0;
  std::vector<uint64_t> commit_writes;
  {
    FilePageStore base(ref_path, page_size);
    CheckOkOrDie(base.status(), "opening reference store");
    base.SetMetrics(&GlobalMetrics());
    FaultInjectionPageStore wrapper(&base);
    PageCache cache(&wrapper);
    Scheme scheme(&cache, options);
    CheckOkOrDie(RunWorkload(&cache, &scheme, &wrapper, ops,
                             ops_per_checkpoint, &checkpoints,
                             &commit_writes),
                 "reference workload");
    total_writes = wrapper.writes_committed();
    sync_calls = base.counters().sync_calls;
  }
  std::printf("%-10s workload: %lld ops, %llu checkpoints, %llu page "
              "writes, %llu fdatasyncs (%.1f per commit)\n",
              name.c_str(), static_cast<long long>(ops),
              static_cast<unsigned long long>(checkpoints),
              static_cast<unsigned long long>(total_writes),
              static_cast<unsigned long long>(sync_calls),
              checkpoints == 0
                  ? 0.0
                  : static_cast<double>(sync_calls) /
                        static_cast<double>(checkpoints));

  const uint64_t stride =
      std::max<uint64_t>(1, total_writes / static_cast<uint64_t>(
                                               std::max<int64_t>(
                                                   1, crash_points)));
  SweepResult result;
  for (uint64_t crash = 0; crash < total_writes; crash += stride) {
    ++result.points;
    {
      std::remove(path.c_str());
      std::remove((path + ".journal").c_str());
      FilePageStore base(path, page_size);
      CheckOkOrDie(base.status(), "opening crash store");
      FaultInjectionPageStore wrapper(&base);
      wrapper.SetSeed(crash);
      wrapper.SetTornWrites(true);
      wrapper.CrashAfterWrites(crash);
      PageCache cache(&wrapper);
      Scheme scheme(&cache, options);
      uint64_t unused = 0;
      const Status run = RunWorkload(&cache, &scheme, &wrapper, ops,
                                     ops_per_checkpoint, &unused, nullptr);
      if (run.ok() || !wrapper.crashed()) {
        std::fprintf(stderr, "crash point %llu never fired\n",
                     static_cast<unsigned long long>(crash));
        std::exit(1);
      }
    }
    const auto reopen_start = std::chrono::steady_clock::now();
    FilePageStore store(path, page_size, FilePageStore::Mode::kOpen);
    if (!store.status().ok()) {
      if (!IsCleanErrorCode(store.status().code())) {
        ++result.silent_corruptions;
      }
      ++result.clean_errors;
      continue;
    }
    PageCache cache(&store);
    Status outcome = Status::OK();
    uint64_t recovered_index = 0;
    do {
      StatusOr<PageId> head = LoadCheckpointHead(&cache);
      if (!head.ok()) {
        outcome = head.status();
        break;
      }
      StatusOr<MetadataReader> reader = MetadataReader::Load(&cache, *head);
      if (!reader.ok()) {
        outcome = reader.status();
        break;
      }
      StatusOr<uint64_t> index = reader->GetU64();
      if (!index.ok()) {
        outcome = index.status();
        break;
      }
      recovered_index = *index;
      StatusOr<uint64_t> scheme_head = reader->GetU64();
      if (!scheme_head.ok()) {
        outcome = scheme_head.status();
        break;
      }
      Scheme scheme(&cache, options);
      outcome = scheme.Restore(*scheme_head);
      if (outcome.ok()) {
        outcome = scheme.CheckInvariants();
      }
    } while (false);
    const auto reopen_end = std::chrono::steady_clock::now();
    result.reopen_us_sum +=
        std::chrono::duration<double, std::micro>(reopen_end - reopen_start)
            .count();
    result.journal_rollbacks += store.counters().journal_rollbacks;
    result.checksums_verified += store.counters().checksums_verified;
    if (outcome.ok()) {
      ++result.recovered;
      // Staleness = checkpoints that were durably committed before the
      // crash but not recovered (expected 0: recovery must surface the
      // newest committed checkpoint).
      uint64_t committed = 0;
      for (const uint64_t w : commit_writes) {
        if (w <= crash) {
          ++committed;
        }
      }
      if (committed > recovered_index + 1) {
        result.staleness_sum += committed - 1 - recovered_index;
      }
    } else if (IsCleanErrorCode(outcome.code())) {
      ++result.clean_errors;
    } else {
      ++result.silent_corruptions;
    }
  }

  std::printf(
      "%-10s sweep: %llu crash points | recovered %llu (%.1f%%), clean "
      "errors %llu, unclean %llu | mean staleness %.2f checkpoints | mean "
      "reopen %.0f us | journal rollbacks %llu | pages CRC-verified %llu\n",
      name.c_str(), static_cast<unsigned long long>(result.points),
      static_cast<unsigned long long>(result.recovered),
      result.points == 0 ? 0.0
                         : 100.0 * static_cast<double>(result.recovered) /
                               static_cast<double>(result.points),
      static_cast<unsigned long long>(result.clean_errors),
      static_cast<unsigned long long>(result.silent_corruptions),
      result.recovered == 0
          ? 0.0
          : static_cast<double>(result.staleness_sum) /
                static_cast<double>(result.recovered),
      result.points == 0
          ? 0.0
          : result.reopen_us_sum / static_cast<double>(result.points),
      static_cast<unsigned long long>(result.journal_rollbacks),
      static_cast<unsigned long long>(result.checksums_verified));
  GlobalMetrics().IncrementCounter("crash_recovery." + name + ".points",
                                   result.points);
  GlobalMetrics().IncrementCounter("crash_recovery." + name + ".recovered",
                                   result.recovered);
  GlobalMetrics().IncrementCounter(
      "crash_recovery." + name + ".silent_corruptions",
      result.silent_corruptions);
}

// WAL replay cost vs. checkpoint interval. Runs a fixed number of batched
// flushes through the WalPipeline at each interval, "crashes" by closing
// the store without a final checkpoint (dirty data pages never reach the
// device — only the superblock, checkpointed state, and the op log are on
// disk), then times the reopen: rollback + scan + checkpoint restore +
// batch replay. Interval 1 checkpoints every flush (nothing to replay);
// larger intervals shift cost from the write path (checkpoint commits)
// to recovery (batches replayed).
void WalReplayBench(const std::string& scheme_name, size_t page_size,
                    int64_t flushes, int64_t batch,
                    const std::vector<uint64_t>& intervals,
                    const std::string& db_dir) {
  std::printf("\n%-10s WAL replay: %lld flushes x %lld ops\n",
              scheme_name.c_str(), static_cast<long long>(flushes),
              static_cast<long long>(batch));
  std::printf("  %-10s %12s %12s %12s %12s %12s\n", "interval", "ckpt commits",
              "fdatasyncs", "write ms", "reopen ms", "replayed ops");
  for (const uint64_t interval : intervals) {
    const std::string path = db_dir + "/crash_bench_wal_" + scheme_name +
                             "_" + std::to_string(interval) + ".db";
    std::remove(path.c_str());
    std::remove((path + ".journal").c_str());
    uint64_t sync_calls = 0;
    uint64_t checkpoints = 0;
    double write_ms = 0;
    {
      FilePageStore store(path, page_size);
      CheckOkOrDie(store.status(), "opening WAL bench store");
      PageCache cache(&store);
      CheckOkOrDie(InitializeSuperblock(&cache), "InitializeSuperblock");
      std::unique_ptr<LabelingScheme> scheme;
      CheckOkOrDie(MakeSchemeOnCache(scheme_name, &cache, &scheme),
                   "MakeScheme");
      scheme->SetMetrics(&GlobalMetrics());
      WalPipeline pipeline(&cache, scheme.get(),
                           {.checkpoint_interval = interval});
      CheckOkOrDie(pipeline.Init(), "WalPipeline::Init");
      UpdateBuffer buffer(
          scheme.get(),
          {.flush_threshold = static_cast<size_t>(batch) + 1,
           .auto_flush = false});
      pipeline.Attach(&buffer);
      StatusOr<UpdateBuffer::Ticket> root_ticket =
          buffer.InsertFirstElement();
      CheckOkOrDie(root_ticket.status(), "InsertFirstElement");
      CheckOkOrDie(buffer.Flush(), "bootstrap flush");
      StatusOr<NewElement> root = buffer.Result(*root_ticket);
      CheckOkOrDie(root.status(), "bootstrap result");
      const uint64_t ckpt_before =
          GlobalMetrics().CounterValue("wal.truncations");
      const auto write_start = std::chrono::steady_clock::now();
      for (int64_t f = 0; f < flushes; ++f) {
        for (int64_t i = 0; i < batch; ++i) {
          // root.end is live at every batch start and never itself
          // targeted, so the batch anchor contract holds at any size.
          CheckOkOrDie(buffer.InsertElementBefore(root->end).status(),
                       "enqueue");
        }
        CheckOkOrDie(buffer.Flush(), "flush");
      }
      write_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - write_start)
                     .count();
      sync_calls = store.counters().sync_calls;
      checkpoints =
          GlobalMetrics().CounterValue("wal.truncations") - ckpt_before;
      // No final checkpoint: the store is dropped with the post-checkpoint
      // tail only in the op log, as a crash would leave it.
    }
    FilePageStore store(path, page_size, FilePageStore::Mode::kOpen);
    CheckOkOrDie(store.status(), "reopening WAL bench store");
    PageCache cache(&store);
    std::unique_ptr<LabelingScheme> scheme;
    CheckOkOrDie(MakeSchemeOnCache(scheme_name, &cache, &scheme),
                 "MakeScheme (recovery)");
    const auto reopen_start = std::chrono::steady_clock::now();
    StatusOr<WalRecoveryResult> recovered = RecoverWithWal(
        &cache, scheme.get(),
        [&](PageId head) { return scheme->Restore(head); });
    const double reopen_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - reopen_start)
            .count();
    CheckOkOrDie(recovered.status(), "RecoverWithWal");
    CheckOkOrDie(scheme->CheckInvariants(), "post-replay invariants");
    std::printf("  %-10llu %12llu %12llu %12.1f %12.1f %12llu\n",
                static_cast<unsigned long long>(interval),
                static_cast<unsigned long long>(checkpoints),
                static_cast<unsigned long long>(sync_calls),
                write_ms, reopen_ms,
                static_cast<unsigned long long>(
                    recovered->replay.ops_replayed));
    const std::string prefix = "crash_recovery." + scheme_name +
                               ".wal_interval_" + std::to_string(interval);
    GlobalMetrics().IncrementCounter(prefix + ".replayed_ops",
                                     recovered->replay.ops_replayed);
    GlobalMetrics().IncrementCounter(
        prefix + ".reopen_us",
        static_cast<uint64_t>(reopen_ms * 1000.0));
    std::remove(path.c_str());
    std::remove((path + ".journal").c_str());
  }
}

int Run(int argc, char** argv) {
  const bool smoke = ExtractSmokeFlag(&argc, argv);
  FlagParser flags;
  int64_t* ops = flags.AddInt64("ops", 300, "workload operations");
  int64_t* ops_per_checkpoint =
      flags.AddInt64("ops_per_checkpoint", 20, "ops between checkpoints");
  int64_t* crash_points =
      flags.AddInt64("crash_points", 120, "crash points to sweep");
  int64_t* page_size = flags.AddInt64("page_size", 1024, "block size");
  int64_t* wal_flushes = flags.AddInt64(
      "wal_flushes", 500, "acknowledged flushes before the WAL-bench crash");
  int64_t* wal_batch =
      flags.AddInt64("wal_batch", 16, "ops per flush in the WAL bench");
  std::string* wal_intervals = flags.AddString(
      "wal_intervals", "1,64,4096", "checkpoint intervals (flushes) to time");
  std::string* schemes = flags.AddString("schemes", "wbox,bbox,naive-8",
                                         "comma-separated schemes");
  std::string* db_dir =
      flags.AddString("db_dir", "/tmp", "directory for database files");
  std::string* metrics_json =
      flags.AddString("metrics_json", "", "write metrics JSON here");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  SmokeCap(smoke, ops, 100);
  SmokeCap(smoke, crash_points, 30);
  SmokeCap(smoke, wal_flushes, 70);

  std::printf("CRASH RECOVERY: torn-write sweep over checkpointed "
              "file-backed stores\n\n");
  for (const std::string& name : SplitSchemes(*schemes)) {
    const size_t page = static_cast<size_t>(*page_size);
    if (name == "wbox") {
      SweepScheme<WBox>(name, WBoxOptions{}, page, *ops,
                        *ops_per_checkpoint, *crash_points, *db_dir);
    } else if (name == "bbox") {
      SweepScheme<BBox>(name, BBoxOptions{}, page, *ops,
                        *ops_per_checkpoint, *crash_points, *db_dir);
    } else if (name.rfind("naive-", 0) == 0) {
      NaiveOptions options;
      options.gap_bits =
          static_cast<uint32_t>(std::stoul(name.substr(6)));
      options.count_bits = 30;
      SweepScheme<NaiveScheme>(name, options, page, *ops,
                               *ops_per_checkpoint, *crash_points, *db_dir);
    } else {
      std::fprintf(stderr, "unknown scheme '%s' (crash sweep needs "
                   "checkpoint support)\n", name.c_str());
      return 1;
    }
  }

  std::printf("\nWAL REPLAY: reopen cost vs. checkpoint interval "
              "(durability is interval-independent: one log fdatasync per "
              "flush regardless)\n");
  std::vector<uint64_t> intervals;
  for (const std::string& item : SplitSchemes(*wal_intervals)) {
    intervals.push_back(std::stoull(item));
  }
  for (const std::string& name : SplitSchemes(*schemes)) {
    WalReplayBench(name, static_cast<size_t>(*page_size), *wal_flushes,
                   *wal_batch, intervals, *db_dir);
  }
  MaybeWriteMetricsJson(*metrics_json);
  return 0;
}

}  // namespace
}  // namespace boxes::bench

int main(int argc, char** argv) { return boxes::bench::Run(argc, argv); }
